//! Record framing of the write-ahead log and of snapshot segments.
//!
//! Both files are a plain sequence of frames:
//!
//! ```text
//! ┌────────────┬────────────┬─────────────────┐
//! │ len  (u32) │ crc32(u32) │ payload (len B) │   little-endian header
//! └────────────┴────────────┴─────────────────┘
//! ```
//!
//! `crc32` is the IEEE checksum of the payload alone, so every record is
//! independently verifiable. A crash mid-append leaves a *torn tail*: a
//! frame whose header or body is incomplete, or whose checksum does not
//! match. [`read_records`] stops at the first such frame and reports the
//! byte offset of the last good record, which [`recover_file`] truncates
//! the file back to — every fully committed record before the tear
//! survives bit-identically, everything after it is discarded.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use tms_fault::{check_io, FaultInjector, FaultPoint};

/// Bytes of the per-record header (`len` + `crc32`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload; a length field beyond this is
/// treated as corruption, not as an instruction to allocate gigabytes.
pub const MAX_RECORD: u32 = 1 << 30;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the checksum Ethernet, gzip and PNG use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frame one payload: length + checksum header, then the payload bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The outcome of scanning a framed file.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// Every payload that passed its checksum, in file order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset one past the last good record — the truncation point.
    pub good_bytes: u64,
    /// Bytes after `good_bytes` (a torn tail or trailing corruption).
    pub torn_bytes: u64,
}

/// Scan a byte buffer of frames, stopping at the first incomplete or
/// checksum-failing record.
pub fn read_records(bytes: &[u8]) -> ReadOutcome {
    let mut out = ReadOutcome::default();
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        let body_start = off + FRAME_HEADER;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            break;
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            break;
        }
        out.records.push(payload.to_vec());
        off = body_end;
    }
    out.good_bytes = off as u64;
    out.torn_bytes = (bytes.len() - off) as u64;
    out
}

/// The outcome of a *resynchronizing* scan: like [`ReadOutcome`], plus the
/// mid-stream byte regions the scan had to skip to reach later records.
#[derive(Debug, Default)]
pub struct ResyncOutcome {
    /// Every payload that passed its checksum, in file order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset one past the last good record.
    pub good_bytes: u64,
    /// Trailing bytes after the last good record that never resynced —
    /// the classic torn tail (a crash mid-append; benign).
    pub torn_bytes: u64,
    /// Mid-stream regions whose frame failed its checksum but were
    /// followed by further valid records — evidence of *in-place
    /// corruption* (a bit flip, not a crash). These regions are what a
    /// recovery quarantines.
    pub corrupt_regions: Vec<CorruptRegion>,
}

/// One skipped byte region from a resynchronizing scan, raw bytes
/// included so the damage can be quarantined for post-mortems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptRegion {
    /// Byte offset of the region in the original file.
    pub offset: u64,
    /// The skipped bytes, verbatim.
    pub bytes: Vec<u8>,
}

impl ResyncOutcome {
    /// Total bytes inside mid-stream corrupt regions.
    pub fn corrupt_bytes(&self) -> u64 {
        self.corrupt_regions
            .iter()
            .map(|r| r.bytes.len() as u64)
            .sum()
    }
}

/// Whether a valid frame (plausible length, intact checksum) starts at
/// `off`. Cheap for random offsets: almost all are rejected on the length
/// field alone, so the CRC only runs over plausible candidates.
fn frame_at(bytes: &[u8], off: usize) -> Option<usize> {
    if bytes.len() - off < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    if len > MAX_RECORD {
        return None;
    }
    let body_start = off + FRAME_HEADER;
    let body_end = body_start.checked_add(len as usize)?;
    if body_end > bytes.len() {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
    (crc32(&bytes[body_start..body_end]) == crc).then_some(body_end)
}

/// Scan a framed buffer like [`read_records`], but instead of stopping at
/// the first bad frame, *resynchronize*: scan forward byte by byte for the
/// next offset where a checksum-valid frame begins and continue reading
/// from there. A single flipped bit inside one record therefore costs
/// exactly that record — every subsequent committed record survives —
/// where the plain scan would discard the whole rest of the log.
///
/// Corruption at the very end of the file (nothing valid after it) is
/// still classified as a torn tail, so crash-recovery semantics are
/// unchanged; only *mid-stream* damage lands in `corrupt_regions`. A
/// false resync would need a 32-bit checksum collision at a random
/// offset (probability 2⁻³² per candidate byte).
pub fn read_records_resync(bytes: &[u8]) -> ResyncOutcome {
    let mut out = ResyncOutcome::default();
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        if let Some(body_end) = frame_at(bytes, off) {
            out.records
                .push(bytes[off + FRAME_HEADER..body_end].to_vec());
            off = body_end;
            continue;
        }
        // Bad frame at `off`: hunt for the next valid one.
        match (off + 1..bytes.len()).find(|&cand| frame_at(bytes, cand).is_some()) {
            Some(resync) => {
                out.corrupt_regions.push(CorruptRegion {
                    offset: off as u64,
                    bytes: bytes[off..resync].to_vec(),
                });
                off = resync;
            }
            None => break, // torn tail from `off` to EOF
        }
    }
    out.good_bytes = off as u64;
    out.torn_bytes = (bytes.len() - off) as u64;
    out
}

/// Read a framed file and truncate any torn tail in place, so the next
/// append continues from the last committed record. Missing files read as
/// empty (nothing to recover).
pub fn recover_file(path: &Path) -> io::Result<ReadOutcome> {
    let mut file = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ReadOutcome::default()),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let outcome = read_records(&bytes);
    if outcome.torn_bytes > 0 {
        file.set_len(outcome.good_bytes)?;
        file.sync_all()?;
    }
    Ok(outcome)
}

/// Read a framed file without modifying it (for `verify`-style audits).
pub fn scan_file(path: &Path) -> io::Result<ReadOutcome> {
    let bytes = std::fs::read(path)?;
    Ok(read_records(&bytes))
}

/// [`recover_file`] with resynchronization: mid-stream corrupt records
/// are cut out (the file is atomically rewritten from the surviving good
/// frames) and returned in `corrupt_regions` for the caller to
/// quarantine; a plain torn tail is truncated exactly as before. Missing
/// files read as empty.
pub fn recover_file_resync(path: &Path) -> io::Result<ResyncOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ResyncOutcome::default()),
        Err(e) => return Err(e),
    };
    let outcome = read_records_resync(&bytes);
    if !outcome.corrupt_regions.is_empty() {
        // Rewrite the log from the surviving records so the damage
        // cannot be re-read (or re-replayed) on the next open.
        let mut clean = Vec::with_capacity(outcome.good_bytes as usize);
        for r in &outcome.records {
            clean.extend_from_slice(&frame(r));
        }
        atomic_write(path, &clean)?;
    } else if outcome.torn_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(outcome.good_bytes)?;
        file.sync_all()?;
    }
    Ok(outcome)
}

/// Resynchronizing scan of a framed file without modifying it.
pub fn scan_file_resync(path: &Path) -> io::Result<ResyncOutcome> {
    let bytes = std::fs::read(path)?;
    Ok(read_records_resync(&bytes))
}

/// Write `bytes` to `path` atomically: a sibling temp file is written and
/// fsync'd first, then renamed over the destination, so a crash at any
/// point leaves either the old file or the new one — never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_faulty(path, bytes, tms_fault::noop())
}

/// [`atomic_write`] with fault-injection hooks: the injector is consulted
/// at the temp-file fsync ([`FaultPoint::StoreFsync`]) and at the
/// publishing rename ([`FaultPoint::StoreRename`]). An injected failure
/// removes the temp file and returns the canonical injected error — the
/// destination is left exactly as it was, mirroring what a real crash at
/// that step guarantees.
pub fn atomic_write_faulty(path: &Path, bytes: &[u8], fault: &dyn FaultInjector) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    if let Err(e) = check_io(fault, FaultPoint::StoreFsync) {
        drop(file);
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    file.sync_all()?;
    drop(file);
    if let Err(e) = check_io(fault, FaultPoint::StoreRename) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Append-side handle used by the flush thread: buffered writes with an
/// explicit durability point.
pub struct WalFile {
    file: std::fs::File,
}

impl WalFile {
    /// Open (creating if needed) the WAL for appending; the caller must
    /// have run [`recover_file`] first so the tail is clean.
    pub fn open_append(path: &Path) -> io::Result<WalFile> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalFile { file })
    }

    /// Append one pre-framed record.
    pub fn append(&mut self, framed: &[u8]) -> io::Result<()> {
        self.file.write_all(framed)
    }

    /// [`append`](WalFile::append) with a silent-corruption consult: when
    /// [`FaultPoint::StoreCorruptRecord`] fires, the record reaches disk
    /// with one deterministically chosen bit flipped — exactly the damage
    /// pattern the resynchronizing recovery and the read-side checksums
    /// exist to catch. The operation itself still reports success, as
    /// real media rot would.
    pub fn append_faulty(&mut self, framed: &[u8], fault: &dyn FaultInjector) -> io::Result<()> {
        if fault.armed() {
            let mut buf = framed.to_vec();
            if fault.corrupt(FaultPoint::StoreCorruptRecord, &mut buf) {
                return self.file.write_all(&buf);
            }
        }
        self.file.write_all(framed)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Drop every record: truncate to zero length (used after a snapshot
    /// has captured the state the log was protecting).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        for payload in [&b"alpha"[..], b"", b"gamma-delta"] {
            buf.extend_from_slice(&frame(payload));
        }
        let out = read_records(&buf);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0], b"alpha");
        assert_eq!(out.records[1], b"");
        assert_eq!(out.records[2], b"gamma-delta");
        assert_eq!(out.good_bytes, buf.len() as u64);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn every_truncation_point_keeps_committed_records() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame(b"first"));
        buf.extend_from_slice(&frame(b"second"));
        let first_len = frame(b"first").len();
        for cut in 0..buf.len() {
            let out = read_records(&buf[..cut]);
            let expect = if cut >= first_len + frame(b"second").len() {
                2
            } else if cut >= first_len {
                1
            } else {
                0
            };
            assert_eq!(out.records.len(), expect, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let mut buf = frame(b"healthy");
        let tail = frame(b"poisoned");
        let mark = buf.len();
        buf.extend_from_slice(&tail);
        buf[mark + FRAME_HEADER + 2] ^= 0x40; // flip one payload bit
        let out = read_records(&buf);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.good_bytes, mark as u64);
        assert_eq!(out.torn_bytes, tail.len() as u64);
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let mut buf = frame(b"ok");
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0]);
        let out = read_records(&buf);
        assert_eq!(out.records.len(), 1);
        assert!(out.torn_bytes > 0);
    }

    /// Frame a fixed set of payloads and return `(buffer, frame spans)`.
    fn framed_fixture(payloads: &[&[u8]]) -> (Vec<u8>, Vec<std::ops::Range<usize>>) {
        let mut buf = Vec::new();
        let mut spans = Vec::new();
        for p in payloads {
            let start = buf.len();
            buf.extend_from_slice(&frame(p));
            spans.push(start..buf.len());
        }
        (buf, spans)
    }

    const FIXTURE: [&[u8]; 5] = [
        b"alpha-record",
        b"beta",
        b"gamma-gamma-gamma",
        b"delta-4",
        b"epsilon-the-last",
    ];

    #[test]
    fn mid_stream_bit_flip_loses_only_that_record() {
        let (mut buf, spans) = framed_fixture(&FIXTURE);
        buf[spans[2].start + FRAME_HEADER + 3] ^= 0x10; // payload of record 2

        // The plain scan throws away everything from the flip onward…
        assert_eq!(read_records(&buf).records.len(), 2);

        // …the resynchronizing scan loses exactly the damaged record.
        let out = read_records_resync(&buf);
        let got: Vec<&[u8]> = out.records.iter().map(|r| r.as_slice()).collect();
        assert_eq!(got, [FIXTURE[0], FIXTURE[1], FIXTURE[3], FIXTURE[4]]);
        assert_eq!(out.torn_bytes, 0);
        assert_eq!(out.corrupt_regions.len(), 1);
        assert_eq!(out.corrupt_regions[0].offset, spans[2].start as u64);
        assert_eq!(out.corrupt_bytes(), spans[2].len() as u64);
    }

    #[test]
    fn flip_in_length_field_still_resyncs() {
        let (mut buf, spans) = framed_fixture(&FIXTURE);
        buf[spans[1].start] ^= 0x04; // length field of record 1
        let out = read_records_resync(&buf);
        let got: Vec<&[u8]> = out.records.iter().map(|r| r.as_slice()).collect();
        assert_eq!(got, [FIXTURE[0], FIXTURE[2], FIXTURE[3], FIXTURE[4]]);
        assert_eq!(out.corrupt_regions.len(), 1);
    }

    #[test]
    fn trailing_corruption_is_still_a_torn_tail() {
        let (mut buf, spans) = framed_fixture(&FIXTURE);
        let last = spans.last().unwrap().clone();
        buf[last.start + FRAME_HEADER + 1] ^= 0x01;
        let out = read_records_resync(&buf);
        assert_eq!(out.records.len(), FIXTURE.len() - 1);
        assert!(out.corrupt_regions.is_empty(), "no mid-stream damage");
        assert_eq!(out.good_bytes, last.start as u64);
        assert_eq!(out.torn_bytes, last.len() as u64);
    }

    #[test]
    fn clean_buffer_resyncs_to_the_plain_scan() {
        let (buf, _) = framed_fixture(&FIXTURE);
        let plain = read_records(&buf);
        let resync = read_records_resync(&buf);
        assert_eq!(plain.records, resync.records);
        assert_eq!(plain.good_bytes, resync.good_bytes);
        assert_eq!(resync.torn_bytes, 0);
        assert!(resync.corrupt_regions.is_empty());
    }

    proptest::proptest! {
        /// Any single-bit flip anywhere in the log costs at most the one
        /// record whose frame the flipped byte lies in; every other
        /// record survives bit-identically and in order.
        #[test]
        fn any_single_bit_flip_keeps_all_other_records(bit in 0usize..1000) {
            let (mut buf, spans) = framed_fixture(&FIXTURE);
            let bit = bit % (buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            let hit = spans.iter().position(|s| s.contains(&(bit / 8))).unwrap();
            let expect: Vec<&[u8]> = FIXTURE
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != hit)
                .map(|(_, p)| *p)
                .collect();
            let out = read_records_resync(&buf);
            let got: Vec<&[u8]> = out.records.iter().map(|r| r.as_slice()).collect();
            proptest::prop_assert_eq!(got, expect);
            // The lost frame is fully accounted for: either quarantined
            // (mid-stream) or torn (trailing).
            proptest::prop_assert_eq!(
                out.corrupt_bytes() + out.torn_bytes,
                spans[hit].len() as u64
            );
        }
    }

    #[test]
    fn recover_file_resync_rewrites_a_clean_log() {
        let dir = std::env::temp_dir().join(format!("tms_wal_rs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let (mut buf, spans) = framed_fixture(&FIXTURE);
        buf[spans[1].start + FRAME_HEADER] ^= 0x80;
        std::fs::write(&path, &buf).unwrap();

        let out = recover_file_resync(&path).unwrap();
        assert_eq!(out.records.len(), FIXTURE.len() - 1);
        assert_eq!(out.corrupt_regions.len(), 1);

        // The rewritten file is pristine: a plain scan reads all four
        // survivors with no torn bytes.
        let rescan = scan_file(&path).unwrap();
        assert_eq!(rescan.records, out.records);
        assert_eq!(rescan.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_faulty_writes_detectably_corrupt_records() {
        use tms_fault::FaultPlan;
        let dir = std::env::temp_dir().join(format!("tms_wal_af_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let plan = FaultPlan::seeded(42);
        {
            let mut wal = WalFile::open_append(&path).unwrap();
            wal.append_faulty(&frame(b"one"), &plan).unwrap();
            plan.fail_next(FaultPoint::StoreCorruptRecord, 1);
            wal.append_faulty(&frame(b"two"), &plan).unwrap();
            wal.append_faulty(&frame(b"three"), &plan).unwrap();
            wal.sync().unwrap();
        }
        assert_eq!(plan.injected(FaultPoint::StoreCorruptRecord), 1);
        let out = scan_file_resync(&path).unwrap();
        let got: Vec<&[u8]> = out.records.iter().map(|r| r.as_slice()).collect();
        assert_eq!(got, [&b"one"[..], b"three"], "flip detected, rest kept");
        assert_eq!(out.corrupt_regions.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("tms_wal_aw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        atomic_write(&path, b"generation-1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        atomic_write(&path, b"generation-2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
