//! Record framing of the write-ahead log and of snapshot segments.
//!
//! Both files are a plain sequence of frames:
//!
//! ```text
//! ┌────────────┬────────────┬─────────────────┐
//! │ len  (u32) │ crc32(u32) │ payload (len B) │   little-endian header
//! └────────────┴────────────┴─────────────────┘
//! ```
//!
//! `crc32` is the IEEE checksum of the payload alone, so every record is
//! independently verifiable. A crash mid-append leaves a *torn tail*: a
//! frame whose header or body is incomplete, or whose checksum does not
//! match. [`read_records`] stops at the first such frame and reports the
//! byte offset of the last good record, which [`recover_file`] truncates
//! the file back to — every fully committed record before the tear
//! survives bit-identically, everything after it is discarded.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use tms_fault::{check_io, FaultInjector, FaultPoint};

/// Bytes of the per-record header (`len` + `crc32`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload; a length field beyond this is
/// treated as corruption, not as an instruction to allocate gigabytes.
pub const MAX_RECORD: u32 = 1 << 30;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the checksum Ethernet, gzip and PNG use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frame one payload: length + checksum header, then the payload bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The outcome of scanning a framed file.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// Every payload that passed its checksum, in file order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset one past the last good record — the truncation point.
    pub good_bytes: u64,
    /// Bytes after `good_bytes` (a torn tail or trailing corruption).
    pub torn_bytes: u64,
}

/// Scan a byte buffer of frames, stopping at the first incomplete or
/// checksum-failing record.
pub fn read_records(bytes: &[u8]) -> ReadOutcome {
    let mut out = ReadOutcome::default();
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        let body_start = off + FRAME_HEADER;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            break;
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            break;
        }
        out.records.push(payload.to_vec());
        off = body_end;
    }
    out.good_bytes = off as u64;
    out.torn_bytes = (bytes.len() - off) as u64;
    out
}

/// Read a framed file and truncate any torn tail in place, so the next
/// append continues from the last committed record. Missing files read as
/// empty (nothing to recover).
pub fn recover_file(path: &Path) -> io::Result<ReadOutcome> {
    let mut file = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ReadOutcome::default()),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let outcome = read_records(&bytes);
    if outcome.torn_bytes > 0 {
        file.set_len(outcome.good_bytes)?;
        file.sync_all()?;
    }
    Ok(outcome)
}

/// Read a framed file without modifying it (for `verify`-style audits).
pub fn scan_file(path: &Path) -> io::Result<ReadOutcome> {
    let bytes = std::fs::read(path)?;
    Ok(read_records(&bytes))
}

/// Write `bytes` to `path` atomically: a sibling temp file is written and
/// fsync'd first, then renamed over the destination, so a crash at any
/// point leaves either the old file or the new one — never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_faulty(path, bytes, tms_fault::noop())
}

/// [`atomic_write`] with fault-injection hooks: the injector is consulted
/// at the temp-file fsync ([`FaultPoint::StoreFsync`]) and at the
/// publishing rename ([`FaultPoint::StoreRename`]). An injected failure
/// removes the temp file and returns the canonical injected error — the
/// destination is left exactly as it was, mirroring what a real crash at
/// that step guarantees.
pub fn atomic_write_faulty(path: &Path, bytes: &[u8], fault: &dyn FaultInjector) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    if let Err(e) = check_io(fault, FaultPoint::StoreFsync) {
        drop(file);
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    file.sync_all()?;
    drop(file);
    if let Err(e) = check_io(fault, FaultPoint::StoreRename) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Append-side handle used by the flush thread: buffered writes with an
/// explicit durability point.
pub struct WalFile {
    file: std::fs::File,
}

impl WalFile {
    /// Open (creating if needed) the WAL for appending; the caller must
    /// have run [`recover_file`] first so the tail is clean.
    pub fn open_append(path: &Path) -> io::Result<WalFile> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalFile { file })
    }

    /// Append one pre-framed record.
    pub fn append(&mut self, framed: &[u8]) -> io::Result<()> {
        self.file.write_all(framed)
    }

    /// Force everything appended so far onto stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Drop every record: truncate to zero length (used after a snapshot
    /// has captured the state the log was protecting).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        for payload in [&b"alpha"[..], b"", b"gamma-delta"] {
            buf.extend_from_slice(&frame(payload));
        }
        let out = read_records(&buf);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0], b"alpha");
        assert_eq!(out.records[1], b"");
        assert_eq!(out.records[2], b"gamma-delta");
        assert_eq!(out.good_bytes, buf.len() as u64);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn every_truncation_point_keeps_committed_records() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame(b"first"));
        buf.extend_from_slice(&frame(b"second"));
        let first_len = frame(b"first").len();
        for cut in 0..buf.len() {
            let out = read_records(&buf[..cut]);
            let expect = if cut >= first_len + frame(b"second").len() {
                2
            } else if cut >= first_len {
                1
            } else {
                0
            };
            assert_eq!(out.records.len(), expect, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let mut buf = frame(b"healthy");
        let tail = frame(b"poisoned");
        let mark = buf.len();
        buf.extend_from_slice(&tail);
        buf[mark + FRAME_HEADER + 2] ^= 0x40; // flip one payload bit
        let out = read_records(&buf);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.good_bytes, mark as u64);
        assert_eq!(out.torn_bytes, tail.len() as u64);
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let mut buf = frame(b"ok");
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0]);
        let out = read_records(&buf);
        assert_eq!(out.records.len(), 1);
        assert!(out.torn_bytes > 0);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("tms_wal_aw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        atomic_write(&path, b"generation-1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        atomic_write(&path, b"generation-2").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
