//! # tms-ml — from-scratch learners for the correction-factor estimator
//!
//! Section VI-B of the paper evaluates four estimator families for the
//! PBlock correction factor; this crate implements all of them with no
//! external ML dependency:
//!
//! * [`LinearRegression`] — ordinary least squares via the normal equations
//!   (with a small ridge term for numerical safety);
//! * [`Mlp`] — the paper's shallow feed-forward network: one fully connected
//!   hidden layer (25 neurons by default), ReLU activation, trained with
//!   Adam on the mean squared error;
//! * [`RegressionTree`] — a CART regression tree (depth 20 in the paper)
//!   with variance-reduction splits and impurity-based feature importance;
//! * [`RandomForest`] — 1,000 such trees over bootstrap resamples with
//!   feature subsampling, plus aggregated feature importances (the paper
//!   calls the importance analysis its most relevant output).
//!
//! [`Dataset`] carries named feature matrices, and [`metrics`] provides the
//! paper's evaluation measures (mean/median relative error, MSE).
//!
//! ```
//! use tms_ml::{Dataset, LinearRegression, Regressor};
//!
//! // y = 2·x0 + 1
//! let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![f64::from(i)]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 1.0).collect();
//! let ds = Dataset::new(vec!["x".into()], xs, ys);
//! let lr = LinearRegression::fit(&ds, 1e-9);
//! assert!((lr.predict(&[10.0]) - 21.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod cv;
pub mod data;
pub mod forest;
pub mod gbt;
pub mod linreg;
pub mod metrics;
pub mod nn;
pub mod tree;

pub use cv::{k_fold, CvScores};
pub use data::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use gbt::{GbtConfig, GradientBoost};
pub use linreg::LinearRegression;
pub use nn::{Mlp, MlpConfig};
pub use tree::{RegressionTree, TreeConfig};

/// Common prediction interface of all estimators.
pub trait Regressor {
    /// Predict the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict a batch.
    fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}
