//! The paper's shallow feed-forward network: one hidden layer, ReLU, Adam.

use crate::data::Dataset;
use crate::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the MLP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width. The paper found "25 neurons provide robust
    /// results for our training set".
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Adam β₁.
    pub beta1: f64,
    /// Adam β₂.
    pub beta2: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 25,
            epochs: 900,
            batch: 24,
            lr: 4e-3,
            beta1: 0.9,
            beta2: 0.999,
            seed: 0,
        }
    }
}

/// A trained one-hidden-layer perceptron with input standardisation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    w1: Vec<Vec<f64>>, // hidden x input
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Mlp {
    /// Train on `data` with Adam minimising the MSE.
    pub fn fit(data: &Dataset, cfg: &MlpConfig) -> Mlp {
        let n = data.len();
        let d = data.dims();
        assert!(n > 0, "cannot fit on an empty data set");
        let h = cfg.hidden.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6e6e);

        // Standardise inputs; constant features get unit scale.
        let mut mean = vec![0.0; d];
        let mut std = vec![0.0; d];
        for row in &data.features {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        for row in &data.features {
            for ((s, m), v) in std.iter_mut().zip(&mean).zip(row) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        let norm: Vec<Vec<f64>> = data
            .features
            .iter()
            .map(|row| {
                row.iter()
                    .zip(mean.iter().zip(&std))
                    .map(|(v, (m, s))| (v - m) / s)
                    .collect()
            })
            .collect();

        // He initialisation for the ReLU layer.
        let scale1 = (2.0 / d.max(1) as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..d).map(|_| rng.gen_range(-scale1..scale1)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let scale2 = (2.0 / h as f64).sqrt();
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-scale2..scale2)).collect();
        let mut b2 = data.targets.iter().sum::<f64>() / n as f64;

        // Adam state.
        let mut m_w1 = vec![vec![0.0; d]; h];
        let mut v_w1 = vec![vec![0.0; d]; h];
        let mut m_b1 = vec![0.0; h];
        let mut v_b1 = vec![0.0; h];
        let mut m_w2 = vec![0.0; h];
        let mut v_w2 = vec![0.0; h];
        let (mut m_b2, mut v_b2) = (0.0, 0.0);
        let eps = 1e-8;
        let mut t = 0u32;

        let mut order: Vec<usize> = (0..n).collect();
        let batch = cfg.batch.max(1);
        let mut hidden_buf = vec![0.0f64; h];
        for epoch in 0..cfg.epochs {
            // Step decay: fine-tune at lr/4 over the last 30% of training.
            let lr = if epoch * 10 >= cfg.epochs * 7 {
                cfg.lr / 4.0
            } else {
                cfg.lr
            };
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                t += 1;
                // Accumulate batch gradients.
                let mut g_w1 = vec![vec![0.0; d]; h];
                let mut g_b1 = vec![0.0; h];
                let mut g_w2 = vec![0.0; h];
                let mut g_b2 = 0.0;
                for &i in chunk {
                    let x = &norm[i];
                    for (j, hb) in hidden_buf.iter_mut().enumerate() {
                        let z: f64 = b1[j] + w1[j].iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                        *hb = z.max(0.0);
                    }
                    let pred: f64 =
                        b2 + w2.iter().zip(&hidden_buf).map(|(w, a)| w * a).sum::<f64>();
                    let err = 2.0 * (pred - data.targets[i]) / chunk.len() as f64;
                    g_b2 += err;
                    for j in 0..h {
                        g_w2[j] += err * hidden_buf[j];
                        if hidden_buf[j] > 0.0 {
                            let gz = err * w2[j];
                            g_b1[j] += gz;
                            for (gw, v) in g_w1[j].iter_mut().zip(x) {
                                *gw += gz * v;
                            }
                        }
                    }
                }
                // Adam update.
                let bc1 = 1.0 - cfg.beta1.powi(t as i32);
                let bc2 = 1.0 - cfg.beta2.powi(t as i32);
                let adam = |p: &mut f64, g: f64, m: &mut f64, v: &mut f64| {
                    *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
                    *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
                    let mh = *m / bc1;
                    let vh = *v / bc2;
                    *p -= lr * mh / (vh.sqrt() + eps);
                };
                for j in 0..h {
                    for k in 0..d {
                        adam(&mut w1[j][k], g_w1[j][k], &mut m_w1[j][k], &mut v_w1[j][k]);
                    }
                    adam(&mut b1[j], g_b1[j], &mut m_b1[j], &mut v_b1[j]);
                    adam(&mut w2[j], g_w2[j], &mut m_w2[j], &mut v_w2[j]);
                }
                adam(&mut b2, g_b2, &mut m_b2, &mut v_b2);
            }
        }

        Mlp {
            w1,
            b1,
            w2,
            b2,
            mean,
            std,
        }
    }
}

impl Regressor for Mlp {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.mean.len());
        let norm: Vec<f64> = x
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect();
        let mut out = self.b2;
        for (j, w2j) in self.w2.iter().enumerate() {
            let z: f64 = self.b1[j]
                + self.w1[j]
                    .iter()
                    .zip(&norm)
                    .map(|(w, v)| w * v)
                    .sum::<f64>();
            out += w2j * z.max(0.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_relative_error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn learns_linear_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.gen_range(0.0..2.0)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x[0] + 1.0).collect();
        let ds = Dataset::new(vec!["x".into()], xs, ys);
        let m = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 300,
                ..MlpConfig::default()
            },
        );
        let preds = m.predict_all(&ds.features);
        assert!(mean_relative_error(&preds, &ds.targets) < 0.03);
    }

    #[test]
    fn learns_nonlinear_ratio() {
        // The CF is mostly driven by ratios; check the MLP can express one.
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<Vec<f64>> = (0..800)
            .map(|_| vec![rng.gen_range(1.0..10.0), rng.gen_range(1.0..10.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.0 + 0.3 * (x[0] / (x[0] + x[1])))
            .collect();
        let ds = Dataset::new(vec!["a".into(), "b".into()], xs, ys);
        let m = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 500,
                seed: 1,
                ..MlpConfig::default()
            },
        );
        let preds = m.predict_all(&ds.features);
        assert!(
            mean_relative_error(&preds, &ds.targets) < 0.05,
            "err = {}",
            mean_relative_error(&preds, &ds.targets)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.1).collect();
        let ds = Dataset::new(vec!["x".into()], xs, ys);
        let cfg = MlpConfig {
            epochs: 50,
            ..MlpConfig::default()
        };
        let a = Mlp::fit(&ds, &cfg);
        let b = Mlp::fit(&ds, &cfg);
        assert_eq!(a.predict(&[5.0]), b.predict(&[5.0]));
    }

    #[test]
    fn constant_features_do_not_nan() {
        let xs = vec![vec![3.0, 1.0]; 40];
        let ys = vec![1.2; 40];
        let ds = Dataset::new(vec!["a".into(), "b".into()], xs, ys);
        let m = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 30,
                ..MlpConfig::default()
            },
        );
        let p = m.predict(&[3.0, 1.0]);
        assert!(p.is_finite());
        assert!((p - 1.2).abs() < 0.2);
    }
}
