//! CART regression tree with impurity-based feature importance.

use crate::data::Dataset;
use crate::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree hyper-parameters. The paper uses a depth of 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 20,
            min_samples_leaf: 2,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    importance: Vec<f64>,
    dims: usize,
}

impl RegressionTree {
    /// Fit on the full feature set (deterministic).
    pub fn fit(data: &Dataset, cfg: &TreeConfig) -> RegressionTree {
        let idx: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, idx, cfg, None, &mut StdRng::seed_from_u64(0))
    }

    /// Fit on a sample of rows, optionally sampling `mtry` features per
    /// node (used by the random forest).
    pub fn fit_on(
        data: &Dataset,
        rows: Vec<usize>,
        cfg: &TreeConfig,
        mtry: Option<usize>,
        rng: &mut StdRng,
    ) -> RegressionTree {
        assert!(!rows.is_empty(), "cannot fit a tree on no rows");
        let dims = data.dims();
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            importance: vec![0.0; dims],
            dims,
        };
        tree.build(data, rows, cfg, mtry, rng, 0);
        // Normalise importances to sum 1 (the paper's convention).
        let total: f64 = tree.importance.iter().sum();
        if total > 0.0 {
            for v in &mut tree.importance {
                *v /= total;
            }
        }
        tree
    }

    /// Per-feature importance (summing to 1, or all-zero for a stump).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn build(
        &mut self,
        data: &Dataset,
        rows: Vec<usize>,
        cfg: &TreeConfig,
        mtry: Option<usize>,
        rng: &mut StdRng,
        depth: usize,
    ) -> usize {
        let n = rows.len();
        let mean = rows.iter().map(|&i| data.targets[i]).sum::<f64>() / n as f64;
        let sse: f64 = rows
            .iter()
            .map(|&i| (data.targets[i] - mean) * (data.targets[i] - mean))
            .sum();
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf(mean));
        if depth >= cfg.max_depth || n < cfg.min_samples_split || sse <= 1e-12 {
            return node_id;
        }

        // Candidate features for this node.
        let mut feats: Vec<usize> = (0..self.dims).collect();
        if let Some(m) = mtry {
            feats.shuffle(rng);
            feats.truncate(m.clamp(1, self.dims));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut sorted = rows.clone();
        for &f in &feats {
            sorted.sort_by(|&a, &b| {
                data.features[a][f]
                    .partial_cmp(&data.features[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Prefix sums over the sorted order.
            let mut sum_left = 0.0;
            let mut sq_left = 0.0;
            let total_sum: f64 = sorted.iter().map(|&i| data.targets[i]).sum();
            let total_sq: f64 = sorted
                .iter()
                .map(|&i| data.targets[i] * data.targets[i])
                .sum();
            for k in 0..n - 1 {
                let y = data.targets[sorted[k]];
                sum_left += y;
                sq_left += y * y;
                let nl = k + 1;
                let nr = n - nl;
                if nl < cfg.min_samples_leaf || nr < cfg.min_samples_leaf {
                    continue;
                }
                let v_here = data.features[sorted[k]][f];
                let v_next = data.features[sorted[k + 1]][f];
                if v_next <= v_here {
                    continue; // no threshold separates equal values
                }
                let sse_left = sq_left - sum_left * sum_left / nl as f64;
                let sum_right = total_sum - sum_left;
                let sse_right = (total_sq - sq_left) - sum_right * sum_right / nr as f64;
                let gain = sse - sse_left - sse_right;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((f, (v_here + v_next) / 2.0, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return node_id;
        };
        self.importance[feature] += gain;
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .into_iter()
            .partition(|&i| data.features[i][feature] <= threshold);
        let left = self.build(data, left_rows, cfg, mtry, rng, depth + 1);
        let right = self.build(data, right_rows, cfg, mtry, rng, depth + 1);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }
}

impl Regressor for RegressionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_relative_error;
    use rand::Rng;

    fn step_data(n: usize) -> Dataset {
        // y = 1 if x0 < 0.5 else 2; feature 1 is pure noise.
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 1.0 } else { 2.0 })
            .collect();
        Dataset::new(vec!["signal".into(), "noise".into()], xs, ys)
    }

    #[test]
    fn fits_step_function_exactly() {
        let ds = step_data(300);
        let t = RegressionTree::fit(&ds, &TreeConfig::default());
        let preds = t.predict_all(&ds.features);
        assert!(mean_relative_error(&preds, &ds.targets) < 1e-9);
    }

    #[test]
    fn importance_identifies_the_signal_feature() {
        let ds = step_data(400);
        let t = RegressionTree::fit(&ds, &TreeConfig::default());
        let imp = t.feature_importance();
        assert!(imp[0] > 0.95, "importance = {imp:?}");
        let total: f64 = imp.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_bounds_the_tree() {
        let ds = step_data(400);
        let stump = RegressionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
        );
        // One split, two leaves.
        assert!(stump.node_count() <= 3);
    }

    #[test]
    fn zero_depth_is_a_mean_leaf() {
        let ds = step_data(100);
        let t = RegressionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        );
        let mean = ds.targets.iter().sum::<f64>() / ds.len() as f64;
        assert!((t.predict(&[0.1, 0.1]) - mean).abs() < 1e-12);
        assert!(t.feature_importance().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_target_never_splits() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let ds = Dataset::new(vec!["x".into()], xs, vec![3.0; 50]);
        let t = RegressionTree::fit(&ds, &TreeConfig::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[25.0]), 3.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = step_data(20);
        let t = RegressionTree::fit(
            &ds,
            &TreeConfig {
                min_samples_leaf: 10,
                max_depth: 20,
                min_samples_split: 2,
            },
        );
        // With 20 samples and 10-per-leaf, only one split is possible.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn learns_smooth_function_approximately() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.gen_range(0.0..3.0)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + (x[0]).sin() * 0.3).collect();
        let ds = Dataset::new(vec!["x".into()], xs, ys);
        let (train, test) = ds.split(0.8, 1);
        let t = RegressionTree::fit(&train, &TreeConfig::default());
        let preds = t.predict_all(&test.features);
        assert!(mean_relative_error(&preds, &test.targets) < 0.02);
    }
}
