//! Gradient-boosted regression trees (extension beyond the paper).
//!
//! The paper evaluates four estimator families and observes that
//! "increasing the expressiveness of our estimator does not always lead to
//! better results". Gradient boosting is the natural next step up in
//! expressiveness from the random forest; it is provided here (and wired
//! into the comparison tooling) so that observation can be tested against a
//! fifth family. Squared-error boosting: each round fits a shallow tree to
//! the current residuals and adds it with a learning-rate shrinkage.

use crate::data::Dataset;
use crate::tree::{RegressionTree, TreeConfig};
use crate::Regressor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtConfig {
    /// Boosting rounds (trees).
    pub rounds: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Depth of each weak tree.
    pub depth: usize,
    /// Row subsampling fraction per round (stochastic gradient boosting).
    pub subsample: f64,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            rounds: 300,
            learning_rate: 0.08,
            depth: 4,
            subsample: 0.8,
            seed: 0,
        }
    }
}

impl GbtConfig {
    /// A reduced configuration for tests.
    pub fn small(seed: u64) -> Self {
        GbtConfig {
            rounds: 80,
            seed,
            ..GbtConfig::default()
        }
    }
}

/// A fitted gradient-boosted ensemble.
pub struct GradientBoost {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoost {
    /// Fit by least-squares gradient boosting.
    pub fn fit(data: &Dataset, cfg: &GbtConfig) -> GradientBoost {
        assert!(!data.is_empty(), "cannot fit on an empty data set");
        let n = data.len();
        let base = data.targets.iter().sum::<f64>() / n as f64;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6762_7421);
        let tree_cfg = TreeConfig {
            max_depth: cfg.depth,
            min_samples_leaf: 3,
            min_samples_split: 6,
        };
        let mut predictions = vec![base; n];
        let mut trees = Vec::with_capacity(cfg.rounds);
        let sample_size = ((n as f64) * cfg.subsample.clamp(0.1, 1.0)).ceil() as usize;
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.rounds {
            // Residual data set over a row subsample.
            indices.shuffle(&mut rng);
            let rows = indices[..sample_size.max(2).min(n)].to_vec();
            let residuals = Dataset {
                feature_names: data.feature_names.clone(),
                features: data.features.clone(),
                targets: data
                    .targets
                    .iter()
                    .zip(&predictions)
                    .map(|(y, p)| y - p)
                    .collect(),
            };
            let tree = RegressionTree::fit_on(&residuals, rows, &tree_cfg, None, &mut rng);
            for (p, x) in predictions.iter_mut().zip(&data.features) {
                *p += cfg.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        GradientBoost {
            base,
            learning_rate: cfg.learning_rate,
            trees,
        }
    }

    /// Rounds actually fitted.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble has no trees (prediction falls back to the
    /// training-mean base value).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for GradientBoost {
    fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_relative_error;
    use rand::Rng;

    fn wavy(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..6.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.2 + 0.3 * x[0].sin() + 0.1 * x[1] + rng.gen_range(-0.02..0.02))
            .collect();
        Dataset::new(vec!["a".into(), "b".into()], xs, ys)
    }

    #[test]
    fn boosting_fits_nonlinear_targets() {
        let ds = wavy(800, 1);
        let (train, test) = ds.split(0.8, 2);
        let gbt = GradientBoost::fit(&train, &GbtConfig::small(1));
        let err = mean_relative_error(&gbt.predict_all(&test.features), &test.targets);
        assert!(err < 0.05, "err = {err:.4}");
        assert_eq!(gbt.len(), 80);
        assert!(!gbt.is_empty());
    }

    #[test]
    fn more_rounds_fit_the_training_set_tighter() {
        let ds = wavy(400, 3);
        let short = GradientBoost::fit(
            &ds,
            &GbtConfig {
                rounds: 10,
                ..GbtConfig::small(0)
            },
        );
        let long = GradientBoost::fit(
            &ds,
            &GbtConfig {
                rounds: 150,
                ..GbtConfig::small(0)
            },
        );
        let e_short = mean_relative_error(&short.predict_all(&ds.features), &ds.targets);
        let e_long = mean_relative_error(&long.predict_all(&ds.features), &ds.targets);
        assert!(e_long < e_short, "{e_long:.4} !< {e_short:.4}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = wavy(200, 4);
        let a = GradientBoost::fit(&ds, &GbtConfig::small(7));
        let b = GradientBoost::fit(&ds, &GbtConfig::small(7));
        assert_eq!(a.predict(&ds.features[0]), b.predict(&ds.features[0]));
    }

    #[test]
    fn constant_target_predicts_the_constant() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let ds = Dataset::new(vec!["x".into()], xs, vec![2.5; 50]);
        let gbt = GradientBoost::fit(&ds, &GbtConfig::small(0));
        assert!((gbt.predict(&[25.0]) - 2.5).abs() < 1e-9);
    }
}
