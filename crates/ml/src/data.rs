//! Feature matrices and train/test handling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labelled data set: row-major features with names, plus targets.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// One name per feature column.
    pub feature_names: Vec<String>,
    /// Feature rows; every row has `feature_names.len()` entries.
    pub features: Vec<Vec<f64>>,
    /// One target per row.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Build a data set, validating the shape.
    pub fn new(feature_names: Vec<String>, features: Vec<Vec<f64>>, targets: Vec<f64>) -> Self {
        assert_eq!(features.len(), targets.len(), "row/target count mismatch");
        for row in &features {
            assert_eq!(row.len(), feature_names.len(), "row width mismatch");
        }
        Dataset {
            feature_names,
            features,
            targets,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the data set has no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn dims(&self) -> usize {
        self.feature_names.len()
    }

    /// Shuffled train/test split: `train_frac` of the rows (rounded down)
    /// go to the first returned set. Deterministic in `seed`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_train = ((self.len() as f64) * train_frac).floor() as usize;
        let pick = |ids: &[usize]| Dataset {
            feature_names: self.feature_names.clone(),
            features: ids.iter().map(|&i| self.features[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i]).collect(),
        };
        (pick(&idx[..n_train]), pick(&idx[n_train..]))
    }

    /// Cap the number of rows per target bin (the paper's ≤75-per-CF-bin
    /// filtering that flattens the label distribution, Figure 8). Rows are
    /// shuffled first so the cap keeps a random subsample.
    pub fn cap_per_bin(&self, bin_width: f64, cap: usize, seed: u64) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        let mut keep: Vec<usize> = Vec::new();
        for &i in &idx {
            let bin = (self.targets[i] / bin_width).floor() as i64;
            let c = counts.entry(bin).or_insert(0);
            if *c < cap {
                *c += 1;
                keep.push(i);
            }
        }
        keep.sort_unstable();
        Dataset {
            feature_names: self.feature_names.clone(),
            features: keep.iter().map(|&i| self.features[i].clone()).collect(),
            targets: keep.iter().map(|&i| self.targets[i]).collect(),
        }
    }

    /// Project the data set onto a subset of feature columns (by index).
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        Dataset {
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
            features: self
                .features
                .iter()
                .map(|row| cols.iter().map(|&c| row[c]).collect())
                .collect(),
            targets: self.targets.clone(),
        }
    }

    /// Histogram of targets at `bin_width` resolution: `(bin lower edge,
    /// count)`, sorted by edge.
    pub fn target_histogram(&self, bin_width: f64) -> Vec<(f64, usize)> {
        let mut counts: std::collections::BTreeMap<i64, usize> = std::collections::BTreeMap::new();
        for &t in &self.targets {
            *counts.entry((t / bin_width).floor() as i64).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(b, c)| (b as f64 * bin_width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        Dataset::new(vec!["a".into(), "b".into()], xs, ys)
    }

    #[test]
    fn split_partitions_rows() {
        let ds = toy(100);
        let (tr, te) = ds.split(0.8, 7);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        // Deterministic.
        let (tr2, _) = ds.split(0.8, 7);
        assert_eq!(tr.targets, tr2.targets);
        // All rows accounted for.
        let mut all: Vec<f64> = tr.targets.iter().chain(&te.targets).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut orig = ds.targets.clone();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, orig);
    }

    #[test]
    fn cap_per_bin_flattens() {
        // 100 targets at 1.0 and 5 at 2.0.
        let mut xs = vec![vec![0.0]; 105];
        let mut ys = vec![1.0; 100];
        ys.extend(vec![2.0; 5]);
        xs.truncate(105);
        let ds = Dataset::new(vec!["x".into()], xs, ys);
        let capped = ds.cap_per_bin(0.1, 10, 3);
        let hist = capped.target_histogram(0.1);
        assert!(hist.iter().all(|&(_, c)| c <= 10));
        assert_eq!(capped.len(), 15);
    }

    #[test]
    fn select_features_projects() {
        let ds = toy(5);
        let sel = ds.select_features(&[1]);
        assert_eq!(sel.dims(), 1);
        assert_eq!(sel.feature_names, vec!["b".to_string()]);
        assert_eq!(sel.features[3], vec![9.0]);
        assert_eq!(sel.targets, ds.targets);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn shape_validation() {
        Dataset::new(vec!["a".into()], vec![vec![1.0, 2.0]], vec![0.0]);
    }

    #[test]
    fn histogram_bins() {
        let ds = Dataset::new(
            vec!["x".into()],
            vec![vec![0.0]; 4],
            vec![0.91, 0.93, 1.01, 1.50],
        );
        let h = ds.target_histogram(0.1);
        assert_eq!(h, vec![(0.9, 2), (1.0, 1), (1.5, 1)]);
    }
}
