//! K-fold cross-validation.
//!
//! The paper evaluates on a single 80/20 split; with ~1,500 samples the
//! resulting error estimate carries noticeable variance (we observed the
//! NN moving by ±1pp across splits). Cross-validation quantifies that
//! spread and is used by the ablation tooling.

use crate::data::Dataset;
use crate::metrics;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-fold and aggregate scores of one cross-validation run.
#[derive(Debug, Clone)]
pub struct CvScores {
    /// Mean relative error of each fold.
    pub fold_errors: Vec<f64>,
}

impl CvScores {
    /// Mean of the fold errors.
    pub fn mean(&self) -> f64 {
        if self.fold_errors.is_empty() {
            return 0.0;
        }
        self.fold_errors.iter().sum::<f64>() / self.fold_errors.len() as f64
    }

    /// Sample standard deviation of the fold errors.
    pub fn std(&self) -> f64 {
        let n = self.fold_errors.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self
            .fold_errors
            .iter()
            .map(|e| (e - m) * (e - m))
            .sum::<f64>()
            / (n - 1) as f64)
            .sqrt()
    }
}

/// Run `k`-fold cross-validation: `fit` trains on a fold's training set and
/// returns a prediction function evaluated on the held-out fold by mean
/// relative error.
pub fn k_fold<F, P>(data: &Dataset, k: usize, seed: u64, mut fit: F) -> CvScores
where
    F: FnMut(&Dataset) -> P,
    P: Fn(&[f64]) -> f64,
{
    let k = k.clamp(2, data.len().max(2));
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let mut fold_errors = Vec::with_capacity(k);
    for fold in 0..k {
        let test_ids: Vec<usize> = idx
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, v)| v)
            .collect();
        let train_ids: Vec<usize> = idx
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, v)| v)
            .collect();
        if test_ids.is_empty() || train_ids.is_empty() {
            continue;
        }
        let pick = |ids: &[usize]| Dataset {
            feature_names: data.feature_names.clone(),
            features: ids.iter().map(|&i| data.features[i].clone()).collect(),
            targets: ids.iter().map(|&i| data.targets[i]).collect(),
        };
        let train = pick(&train_ids);
        let test = pick(&test_ids);
        let predict = fit(&train);
        let preds: Vec<f64> = test.features.iter().map(|x| predict(x)).collect();
        fold_errors.push(metrics::mean_relative_error(&preds, &test.targets));
    }
    CvScores { fold_errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;
    use crate::Regressor;
    use rand::Rng;

    fn noisy_line(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen_range(1.0..5.0)]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x[0] + 1.0 + rng.gen_range(-0.1..0.1))
            .collect();
        Dataset::new(vec!["x".into()], xs, ys)
    }

    #[test]
    fn cv_scores_a_linear_model() {
        let ds = noisy_line(300, 1);
        let scores = k_fold(&ds, 5, 7, |train| {
            let m = LinearRegression::fit(train, 1e-9);
            move |x: &[f64]| m.predict(x)
        });
        assert_eq!(scores.fold_errors.len(), 5);
        assert!(scores.mean() < 0.03, "mean = {}", scores.mean());
        assert!(scores.std() < scores.mean(), "folds should agree");
    }

    #[test]
    fn cv_is_deterministic_in_seed() {
        let ds = noisy_line(120, 2);
        let run = |seed| {
            k_fold(&ds, 4, seed, |train| {
                let m = LinearRegression::fit(train, 1e-9);
                move |x: &[f64]| m.predict(x)
            })
            .fold_errors
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn k_is_clamped_to_sane_range() {
        let ds = noisy_line(10, 3);
        let scores = k_fold(&ds, 1, 0, |train| {
            let m = LinearRegression::fit(train, 1e-9);
            move |x: &[f64]| m.predict(x)
        });
        assert_eq!(scores.fold_errors.len(), 2, "k=1 clamps to 2");
        let empty = CvScores {
            fold_errors: vec![],
        };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std(), 0.0);
    }

    #[test]
    fn folds_partition_the_data() {
        // Every sample is held out exactly once across the folds: the
        // total number of test predictions equals the data set size.
        let ds = noisy_line(101, 4);
        let mut total_test = 0;
        k_fold(&ds, 5, 9, |train| {
            total_test += ds.len() - train.len();
            let m = LinearRegression::fit(train, 1e-9);
            move |x: &[f64]| m.predict(x)
        });
        assert_eq!(total_test, 101);
    }
}
