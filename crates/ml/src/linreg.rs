//! Ordinary least squares via the normal equations.

use crate::data::Dataset;
use crate::Regressor;

/// A fitted linear model `y = w · x + b`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearRegression {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LinearRegression {
    /// Fit by solving `(XᵀX + ridge·I) w = Xᵀy` with Gaussian elimination.
    /// `ridge` keeps the system well-posed on collinear features; the
    /// paper's nine-input regressor corresponds to `ridge ≈ 1e-8`.
    pub fn fit(data: &Dataset, ridge: f64) -> LinearRegression {
        let n = data.len();
        let d = data.dims();
        assert!(n > 0, "cannot fit on an empty data set");
        // Augmented design matrix with a trailing 1 for the intercept.
        let dim = d + 1;
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &y) in data.features.iter().zip(&data.targets) {
            for i in 0..dim {
                let xi = if i < d { row[i] } else { 1.0 };
                xty[i] += xi * y;
                for j in 0..dim {
                    let xj = if j < d { row[j] } else { 1.0 };
                    xtx[i][j] += xi * xj;
                }
            }
        }
        for (i, r) in xtx.iter_mut().enumerate() {
            r[i] += ridge.max(0.0);
        }
        let sol = solve(xtx, xty);
        LinearRegression {
            weights: sol[..d].to_vec(),
            bias: sol[d],
        }
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

/// Gaussian elimination with partial pivoting. Singular pivots (possible on
/// degenerate features with ridge = 0) resolve to zero coefficients.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col].abs() < 1e-12 {
            continue;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let diag = a[col][col];
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r][col] / diag;
            if factor == 0.0 {
                continue;
            }
            let (pivot_row, other_row) = if r < col {
                let (lo, hi) = a.split_at_mut(col);
                (&hi[0], &mut lo[r])
            } else {
                let (lo, hi) = a.split_at_mut(r);
                (&lo[col], &mut hi[0])
            };
            for (o, p) in other_row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *o -= factor * p;
            }
            b[r] -= factor * b[col];
        }
    }
    (0..n)
        .map(|i| {
            if a[i][i].abs() < 1e-12 {
                0.0
            } else {
                b[i] / a[i][i]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_law() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 0.5).collect();
        let ds = Dataset::new(vec!["a".into(), "b".into()], xs, ys);
        let m = LinearRegression::fit(&ds, 0.0);
        assert!((m.weights[0] - 3.0).abs() < 1e-8);
        assert!((m.weights[1] + 2.0).abs() < 1e-8);
        assert!((m.bias - 0.5).abs() < 1e-8);
    }

    #[test]
    fn noisy_fit_is_near_truth() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.5 * x[0] + 1.0 + rng.gen_range(-0.05..0.05))
            .collect();
        let ds = Dataset::new(vec!["x".into()], xs, ys);
        let m = LinearRegression::fit(&ds, 1e-8);
        assert!((m.weights[0] - 1.5).abs() < 0.02, "{:?}", m);
    }

    #[test]
    fn collinear_features_do_not_explode() {
        // Second feature is an exact copy of the first.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i), f64::from(i)]).collect();
        let ys: Vec<f64> = (0..50).map(|i| f64::from(i) * 2.0).collect();
        let ds = Dataset::new(vec!["a".into(), "b".into()], xs, ys);
        let m = LinearRegression::fit(&ds, 1e-6);
        let pred = m.predict(&[10.0, 10.0]);
        assert!((pred - 20.0).abs() < 0.01, "pred = {pred}");
        assert!(m.weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn constant_target_yields_bias_only() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let ds = Dataset::new(vec!["x".into()], xs, vec![7.0; 20]);
        let m = LinearRegression::fit(&ds, 1e-9);
        assert!((m.predict(&[100.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        LinearRegression::fit(&Dataset::new(vec!["x".into()], vec![], vec![]), 0.0);
    }
}
