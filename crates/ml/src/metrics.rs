//! Evaluation metrics used in Section VII.

/// Mean squared error.
pub fn mse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean relative error `mean(|pred − actual| / actual)` — the paper's
/// headline metric ("relative error … below 5%").
pub fn mean_relative_error(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| ((p - a) / a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Median absolute relative error — used for the cnvW1A1 evaluation
/// (Section VIII quotes median absolute errors of 11.03% and 9.5%).
pub fn median_relative_error(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    let mut errs: Vec<f64> = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| ((p - a) / a).abs())
        .collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = errs.len();
    if n % 2 == 1 {
        errs[n / 2]
    } else {
        (errs[n / 2 - 1] + errs[n / 2]) / 2.0
    }
}

/// Fraction of predictions within `tol` relative error (Section VIII:
/// "31.75% have an error below 4%").
pub fn fraction_within(pred: &[f64], actual: &[f64], tol: f64) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred
        .iter()
        .zip(actual)
        .filter(|(p, a)| ((*p - **a) / **a).abs() < tol)
        .count();
    hits as f64 / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn relative_error_is_scale_free() {
        let a = mean_relative_error(&[1.1], &[1.0]);
        let b = mean_relative_error(&[110.0], &[100.0]);
        assert!((a - b).abs() < 1e-12);
        assert!((a - 0.1).abs() < 1e-12);
    }

    #[test]
    fn median_ignores_outliers() {
        let pred = vec![1.0, 1.0, 1.0, 1.0, 10.0];
        let act = vec![1.0; 5];
        assert_eq!(median_relative_error(&pred, &act), 0.0);
        assert!(mean_relative_error(&pred, &act) > 1.0);
    }

    #[test]
    fn median_even_count_averages() {
        let pred = vec![1.1, 1.3];
        let act = vec![1.0, 1.0];
        let m = median_relative_error(&pred, &act);
        assert!((m - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_counts_hits() {
        let pred = vec![1.0, 1.05, 1.5];
        let act = vec![1.0, 1.0, 1.0];
        let f = fraction_within(&pred, &act, 0.1);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }
}
