//! Random forest: bagged CART trees with feature subsampling.

use crate::data::Dataset;
use crate::tree::{RegressionTree, TreeConfig};
use crate::Regressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Forest hyper-parameters. The paper combines "the predictions of 1000
/// decision-trees (each with a depth of 20)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Features sampled per node; `0` means ⌈d/3⌉ (the regression default).
    pub mtry: usize,
    /// Seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 1000,
            tree: TreeConfig::default(),
            mtry: 0,
            seed: 0,
        }
    }
}

impl ForestConfig {
    /// A smaller forest for tests and quick benches.
    pub fn small(seed: u64) -> Self {
        ForestConfig {
            n_trees: 60,
            tree: TreeConfig::default(),
            mtry: 0,
            seed,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    importance: Vec<f64>,
}

impl RandomForest {
    /// Fit `cfg.n_trees` trees on bootstrap resamples, in parallel.
    pub fn fit(data: &Dataset, cfg: &ForestConfig) -> RandomForest {
        assert!(!data.is_empty(), "cannot fit on an empty data set");
        let n = data.len();
        let d = data.dims();
        let mtry = if cfg.mtry == 0 {
            d.div_ceil(3)
        } else {
            cfg.mtry
        };
        let trees: Vec<RegressionTree> = (0..cfg.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng =
                    StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit_on(data, rows, &cfg.tree, Some(mtry), &mut rng)
            })
            .collect();
        let mut importance = vec![0.0; d];
        for t in &trees {
            for (acc, v) in importance.iter_mut().zip(t.feature_importance()) {
                *acc += v;
            }
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            for v in &mut importance {
                *v /= total;
            }
        }
        RandomForest { trees, importance }
    }

    /// Averaged, normalised feature importances (sum to 1).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Regressor for RandomForest {
    fn predict(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_relative_error;

    fn ratio_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    rng.gen_range(1.0..100.0),
                    rng.gen_range(1.0..100.0),
                    rng.gen_range(0.0..1.0), // noise
                ]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.9 + 0.8 * x[0] / (x[0] + x[1]) + rng.gen_range(-0.06..0.06))
            .collect();
        Dataset::new(vec!["carry".into(), "rest".into(), "noise".into()], xs, ys)
    }

    #[test]
    fn forest_beats_generalisation_of_single_tree() {
        let ds = ratio_data(1200, 7);
        let (train, test) = ds.split(0.8, 2);
        let tree = RegressionTree::fit(&train, &TreeConfig::default());
        // Pure bagging (mtry = d) so the comparison isolates variance
        // reduction, which is what lets the forest beat one deep tree on
        // noisy labels.
        let forest = RandomForest::fit(
            &train,
            &ForestConfig {
                mtry: 3,
                ..ForestConfig::small(3)
            },
        );
        let e_tree = mean_relative_error(&tree.predict_all(&test.features), &test.targets);
        let e_forest = mean_relative_error(&forest.predict_all(&test.features), &test.targets);
        assert!(
            e_forest < e_tree,
            "forest {e_forest:.4} should beat tree {e_tree:.4}"
        );
    }

    #[test]
    fn importance_prefers_informative_features() {
        let ds = ratio_data(800, 9);
        let forest = RandomForest::fit(&ds, &ForestConfig::small(1));
        let imp = forest.feature_importance();
        assert!(imp[0] + imp[1] > 0.9, "importance = {imp:?}");
        assert!(imp[2] < 0.1);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = ratio_data(200, 4);
        let cfg = ForestConfig {
            n_trees: 16,
            ..ForestConfig::small(5)
        };
        let a = RandomForest::fit(&ds, &cfg);
        let b = RandomForest::fit(&ds, &cfg);
        let x = &ds.features[0];
        assert_eq!(a.predict(x), b.predict(x));
        assert_eq!(a.feature_importance(), b.feature_importance());
    }

    #[test]
    fn tree_count_matches_config() {
        let ds = ratio_data(100, 8);
        let f = RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 12,
                ..ForestConfig::small(0)
            },
        );
        assert_eq!(f.len(), 12);
        assert!(!f.is_empty());
    }

    #[test]
    fn prediction_is_in_target_range() {
        let ds = ratio_data(500, 10);
        let f = RandomForest::fit(&ds, &ForestConfig::small(2));
        for x in ds.features.iter().take(50) {
            let p = f.predict(x);
            assert!((0.8..=1.8).contains(&p), "p = {p}");
        }
    }
}
