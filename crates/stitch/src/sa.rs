//! The simulated-annealing stitcher.

use crate::fabric::{
    build_candidates, build_incident, incident_cost, total_cost, Candidates, Grid,
};
use crate::problem::StitchProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tms_device::Device;

/// SA schedule and bookkeeping knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchConfig {
    /// RNG seed; the whole anneal is deterministic given it.
    pub seed: u64,
    /// Total proposed moves.
    pub max_moves: u64,
    /// Moves between temperature updates.
    pub moves_per_temp: u32,
    /// Geometric cooling factor per temperature step.
    pub cooling: f64,
    /// Attempt to insert an unplaced instance every this many moves.
    pub retry_unplaced_every: u64,
    /// Cost-trace sampling period, in moves.
    pub sample_every: u64,
    /// VPR-style range limiting: propose moves near the current location
    /// as the temperature drops. Disable to ablate (pure random targets).
    pub range_limited: bool,
}

impl StitchConfig {
    /// A production-quality schedule for designs of a few hundred macros.
    pub fn standard(seed: u64) -> Self {
        StitchConfig {
            seed,
            max_moves: 120_000,
            moves_per_temp: 256,
            cooling: 0.985,
            retry_unplaced_every: 500,
            sample_every: 500,
            range_limited: true,
        }
    }

    /// A short schedule for tests and docs.
    pub fn fast(seed: u64) -> Self {
        StitchConfig {
            seed,
            max_moves: 4_000,
            moves_per_temp: 64,
            cooling: 0.95,
            retry_unplaced_every: 200,
            sample_every: 100,
            range_limited: true,
        }
    }
}

/// Outcome of a stitching run.
#[derive(Debug, Clone)]
pub struct StitchResult {
    /// Anchor position of each instance (`None` = unplaced).
    pub positions: Vec<Option<(u32, u32)>>,
    /// Instances that could not be placed.
    pub unplaced: Vec<u32>,
    /// Number of placed instances.
    pub placed_count: usize,
    /// Number of unplaced instances.
    pub unplaced_count: usize,
    /// Wirelength cost after greedy legalisation.
    pub initial_cost: f64,
    /// Wirelength cost at the end of the anneal.
    pub final_cost: f64,
    /// Moves rejected because the target fabric was occupied.
    pub illegal_moves: u64,
    /// Legal moves accepted by the Metropolis criterion.
    pub accepted_moves: u64,
    /// Legal moves rejected (and undone) by the Metropolis criterion.
    pub rejected_moves: u64,
    /// Temperature when the anneal stopped.
    pub final_temp: f64,
    /// Initially-unplaced instances successfully inserted during the
    /// anneal (each can raise the cost above `initial_cost`, since its
    /// nets gain endpoints).
    pub late_insertions: u64,
    /// Total proposed moves.
    pub total_moves: u64,
    /// Move index at which the cost first came within 1% of its final
    /// improvement — the convergence measure behind the paper's 1.37×.
    pub convergence_move: u64,
    /// Move index at which the best (returned) placement was found.
    pub best_move: u64,
    /// Sampled `(move, cost)` trace.
    pub cost_trace: Vec<(u64, f64)>,
}

impl StitchResult {
    /// Total fabric cells covered by placed footprints.
    pub fn placed_area(&self, problem: &StitchProblem) -> u64 {
        self.positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| problem.block_of(i as u32).area())
            .sum()
    }

    /// Dead cells locked inside placed footprints (PBlock waste).
    pub fn wasted_cells(&self, problem: &StitchProblem) -> u64 {
        self.positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| {
                let b = problem.block_of(i as u32);
                b.area().saturating_sub(u64::from(b.used_slices))
            })
            .sum()
    }
}

pub(crate) struct State<'p> {
    pub(crate) problem: &'p StitchProblem,
    pub(crate) candidates: Vec<Candidates>,
    pub(crate) positions: Vec<Option<(u32, u32)>>,
    pub(crate) grid: Grid,
    pub(crate) incident: Vec<Vec<u32>>,
    pub(crate) cost: f64,
}

impl<'p> State<'p> {
    /// Move `inst` to `(x, y)` (must be legal), returning the cost delta.
    pub(crate) fn apply_move(&mut self, inst: u32, x: u32, y: u32) -> f64 {
        let b = self.problem.block_of(inst);
        let (bw, bh) = (b.width, b.height);
        let before = incident_cost(self.problem, &self.incident, &self.positions, inst);
        if let Some((ox, oy)) = self.positions[inst as usize] {
            self.grid.set(ox, oy, bw, bh, 0);
        }
        self.grid.set(x, y, bw, bh, inst + 1);
        self.positions[inst as usize] = Some((x, y));
        let after = incident_cost(self.problem, &self.incident, &self.positions, inst);
        self.cost += after - before;
        after - before
    }

    pub(crate) fn undo_move(&mut self, inst: u32, old: Option<(u32, u32)>, delta: f64) {
        let b = self.problem.block_of(inst);
        let (bw, bh) = (b.width, b.height);
        if let Some((x, y)) = self.positions[inst as usize] {
            self.grid.set(x, y, bw, bh, 0);
        }
        if let Some((ox, oy)) = old {
            self.grid.set(ox, oy, bw, bh, inst + 1);
        }
        self.positions[inst as usize] = old;
        self.cost -= delta;
    }
}

/// Run greedy legalisation followed by simulated annealing.
pub fn stitch(device: &Device, problem: &StitchProblem, config: &StitchConfig) -> StitchResult {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut state = State {
        problem,
        candidates: build_candidates(device, problem),
        positions: vec![None; problem.instances.len()],
        grid: Grid::new(device.width(), device.rows()),
        incident: build_incident(problem),
        cost: 0.0,
    };

    // Greedy legalisation, largest blocks first.
    let mut order: Vec<u32> = (0..problem.instances.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(problem.block_of(i).area()));
    for &inst in &order {
        try_insert(&mut state, inst, &mut rng);
    }
    state.cost = total_cost(problem, &state.positions);
    let initial_cost = state.cost;

    // Temperature from the scale of legal-move deltas.
    let t0 = estimate_t0(&mut state, &mut rng).max(1e-6);
    let mut temp = t0;

    let mut illegal_moves = 0u64;
    let mut accepted_moves = 0u64;
    let mut rejected_moves = 0u64;
    let late_insertions = 0u64;
    let mut cost_trace: Vec<(u64, f64)> = vec![(0, initial_cost)];
    let n_inst = problem.instances.len() as u32;

    // Best-so-far snapshot: SA accepts uphill moves, so the terminal state
    // can be worse than an earlier one; the returned placement is the best
    // visited. A late insertion resets the snapshot — placing one more
    // block always outranks wirelength.
    let mut best_cost = state.cost;
    let mut best_positions = state.positions.clone();
    let mut best_move = 0u64;

    let mut mv = 0u64;
    while mv < config.max_moves && n_inst > 0 {
        mv += 1;
        if config.retry_unplaced_every > 0 && mv.is_multiple_of(config.retry_unplaced_every) {
            if let Some(unp) = state.positions.iter().position(|p| p.is_none()) {
                try_insert(&mut state, unp as u32, &mut rng);
            }
        }
        let inst = rng.gen_range(0..n_inst);
        let cand = &state.candidates[problem.instances[inst as usize]];
        let count = cand.count();
        if count == 0 || state.positions[inst as usize].is_none() {
            continue;
        }
        // VPR-style range limiting: as the temperature drops, propose
        // targets closer to the current location (candidates are ordered by
        // x then y, so index distance approximates fabric distance).
        let window = if config.range_limited {
            ((temp / t0).clamp(0.02, 1.0) * count as f64).max(8.0) as u64
        } else {
            count
        };
        let (x, y) = if window >= count {
            cand.nth(rng.gen_range(0..count))
        } else {
            let cur = state.positions[inst as usize].unwrap();
            let cur_idx = cand.index_near(cur);
            let lo = cur_idx.saturating_sub(window / 2);
            let hi = (lo + window).min(count);
            cand.nth(rng.gen_range(lo..hi))
        };
        if state.positions[inst as usize] == Some((x, y)) {
            continue;
        }
        let b = problem.block_of(inst);
        if !state.grid.is_free(x, y, b.width, b.height, inst) {
            illegal_moves += 1;
            continue;
        }
        let old = state.positions[inst as usize];
        let delta = state.apply_move(inst, x, y);
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
        if !accept {
            rejected_moves += 1;
            state.undo_move(inst, old, delta);
        } else {
            accepted_moves += 1;
            if state.cost < best_cost - 1e-12 {
                best_cost = state.cost;
                best_positions = state.positions.clone();
                best_move = mv;
            }
        }
        if mv.is_multiple_of(u64::from(config.moves_per_temp)) {
            temp = (temp * config.cooling).max(t0 * 1e-4);
        }
        if mv.is_multiple_of(config.sample_every) {
            cost_trace.push((mv, state.cost));
        }
    }
    // Restore the best-visited placement if the terminal state is worse.
    if best_cost < state.cost - 1e-12 {
        state.positions = best_positions;
        state.cost = best_cost;
    }
    let final_cost = total_cost(problem, &state.positions);
    cost_trace.push((mv, final_cost));

    let unplaced: Vec<u32> = state
        .positions
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_none())
        .map(|(i, _)| i as u32)
        .collect();

    // Convergence: first sampled move within 1% of the total improvement;
    // the sparse trace can miss the best-so-far level, so the recorded
    // best_move bounds it from above.
    let improvement = (initial_cost - final_cost).max(1e-12);
    let threshold = final_cost + 0.01 * improvement;
    let convergence_move = cost_trace
        .iter()
        .find(|&&(_, c)| c <= threshold)
        .map(|&(m, _)| m)
        .unwrap_or(mv)
        .min(best_move.max(1));

    StitchResult {
        placed_count: state.positions.len() - unplaced.len(),
        unplaced_count: unplaced.len(),
        positions: state.positions,
        unplaced,
        initial_cost,
        final_cost,
        illegal_moves,
        accepted_moves,
        rejected_moves,
        final_temp: temp,
        late_insertions,
        total_moves: mv,
        convergence_move,
        best_move,
        cost_trace,
    }
}

/// Try to insert an unplaced instance at a pseudo-random free candidate.
pub(crate) fn try_insert(state: &mut State<'_>, inst: u32, rng: &mut StdRng) -> bool {
    if state.positions[inst as usize].is_some() {
        return true;
    }
    let b = state.problem.block_of(inst);
    let cand = &state.candidates[state.problem.instances[inst as usize]];
    let count = cand.count();
    if count == 0 {
        return false;
    }
    // Scan all candidates from a random start so the greedy pass fills the
    // fabric evenly rather than stacking left.
    let start = rng.gen_range(0..count);
    for k in 0..count {
        let (x, y) = cand.nth((start + k) % count);
        if state.grid.is_free(x, y, b.width, b.height, inst) {
            state.apply_move(inst, x, y);
            return true;
        }
    }
    false
}

/// Sample legal moves to scale the starting temperature.
fn estimate_t0(state: &mut State<'_>, rng: &mut StdRng) -> f64 {
    let n_inst = state.problem.instances.len() as u32;
    if n_inst == 0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut n = 0u32;
    for _ in 0..200 {
        let inst = rng.gen_range(0..n_inst);
        if state.positions[inst as usize].is_none() {
            continue;
        }
        let cand = &state.candidates[state.problem.instances[inst as usize]];
        let count = cand.count();
        if count == 0 {
            continue;
        }
        let (x, y) = cand.nth(rng.gen_range(0..count));
        let b = state.problem.block_of(inst);
        if !state.grid.is_free(x, y, b.width, b.height, inst) {
            continue;
        }
        let old = state.positions[inst as usize];
        let delta = state.apply_move(inst, x, y);
        state.undo_move(inst, old, delta);
        sum += delta.abs();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        2.0 * sum / f64::from(n)
    }
}

/// [`stitch`] with telemetry: wraps the anneal in a `stitch`-phase span
/// (placed/unplaced counts, final cost), bumps the
/// `stitch.{placed,unplaced,moves,accepted,rejected,late_insertions}`
/// counters and records the final wirelength cost and terminal
/// temperature as the `stitch.cost` / `stitch.final_temp` observations.
/// The plain [`stitch`] stays untouched — its many call sites record
/// nothing.
pub fn stitch_observed(
    device: &Device,
    problem: &StitchProblem,
    config: &StitchConfig,
    obs: &dyn tms_obs::Recorder,
) -> StitchResult {
    let mut sp = tms_obs::span(obs, tms_obs::Phase::Stitch, "sa");
    let r = stitch(device, problem, config);
    sp.field("placed", r.placed_count as f64);
    sp.field("unplaced", r.unplaced_count as f64);
    sp.field("final_cost", r.final_cost);
    obs.count("stitch.placed", r.placed_count as u64);
    obs.count("stitch.unplaced", r.unplaced_count as u64);
    obs.count("stitch.moves", r.total_moves);
    obs.count("stitch.accepted", r.accepted_moves);
    obs.count("stitch.rejected", r.rejected_moves);
    obs.count("stitch.illegal", r.illegal_moves);
    obs.count("stitch.late_insertions", r.late_insertions);
    obs.observe("stitch.cost", r.final_cost);
    obs.observe("stitch.final_temp", r.final_temp);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MacroBlock;
    use tms_device::Device;

    fn block(dev: &Device, name: &str, w: u32, h: u32) -> MacroBlock {
        MacroBlock {
            name: name.into(),
            signature: dev.signature(0, w),
            width: w,
            height: h,
            used_slices: w * h * 3 / 4,
            irregularity: 0.25,
        }
    }

    fn chain_problem(dev: &Device, n: u32, w: u32, h: u32) -> StitchProblem {
        let mut p = StitchProblem::new(vec![block(dev, "m", w, h)]);
        let ids: Vec<u32> = (0..n).map(|_| p.add_instance(0)).collect();
        for pair in ids.windows(2) {
            p.add_net(pair, 1.0);
        }
        p
    }

    #[test]
    fn all_blocks_place_when_device_is_roomy() {
        let dev = Device::xc7z020();
        let p = chain_problem(&dev, 20, 3, 10);
        let r = stitch(&dev, &p, &StitchConfig::fast(1));
        assert_eq!(r.unplaced_count, 0);
        assert_eq!(r.placed_count, 20);
        // No two placed blocks overlap.
        for i in 0..20u32 {
            for j in 0..i {
                let (a, b) = (
                    r.positions[i as usize].unwrap(),
                    r.positions[j as usize].unwrap(),
                );
                let ra = tms_device::Rect::new(a.0, a.1, 3, 10);
                let rb = tms_device::Rect::new(b.0, b.1, 3, 10);
                assert!(!ra.overlaps(&rb), "{i} and {j} overlap");
            }
        }
    }

    #[test]
    fn observed_stitch_matches_the_plain_call_and_records() {
        use tms_obs::{AggregatingSink, Phase};
        let dev = Device::xc7z020();
        let p = chain_problem(&dev, 20, 3, 10);
        let cfg = StitchConfig::fast(1);
        let sink = AggregatingSink::new();
        let observed = stitch_observed(&dev, &p, &cfg, &sink);
        let plain = stitch(&dev, &p, &cfg);
        assert_eq!(
            observed.positions, plain.positions,
            "telemetry must not perturb the anneal"
        );
        assert_eq!(sink.phase_spans(Phase::Stitch), 1);
        assert_eq!(sink.counter("stitch.placed"), observed.placed_count as u64);
        assert_eq!(
            sink.counter("stitch.unplaced"),
            observed.unplaced_count as u64
        );
        assert_eq!(sink.counter("stitch.moves"), observed.total_moves);
        // The SA decision stats are exported, and they reconcile: every
        // proposed move is accepted, rejected, illegal, or skipped.
        assert_eq!(sink.counter("stitch.accepted"), observed.accepted_moves);
        assert_eq!(sink.counter("stitch.rejected"), observed.rejected_moves);
        assert_eq!(sink.counter("stitch.illegal"), observed.illegal_moves);
        assert!(observed.accepted_moves > 0);
        assert!(
            observed.accepted_moves + observed.rejected_moves + observed.illegal_moves
                <= observed.total_moves
        );
        let (n, cost) = sink.observation("stitch.cost").unwrap();
        assert_eq!(n, 1);
        assert!((cost - observed.final_cost).abs() < 1e-9);
        let (n, temp) = sink.observation("stitch.final_temp").unwrap();
        assert_eq!(n, 1);
        assert!((temp - observed.final_temp).abs() < 1e-12);
        assert!(observed.final_temp > 0.0);
    }

    #[test]
    fn sa_does_not_worsen_cost() {
        let dev = Device::xc7z020();
        let p = chain_problem(&dev, 30, 3, 12);
        let r = stitch(&dev, &p, &StitchConfig::standard(3));
        assert!(r.final_cost <= r.initial_cost * 1.0 + 1e-9);
        assert!(r.final_cost > 0.0);
    }

    #[test]
    fn oversubscribed_device_leaves_blocks_unplaced() {
        let dev = Device::xc7z020();
        // 200 instances of a 30x40 block: 240k cells on a ~24k-cell fabric.
        let p = chain_problem(&dev, 200, 30, 40);
        let r = stitch(&dev, &p, &StitchConfig::fast(5));
        assert!(r.unplaced_count > 150, "unplaced = {}", r.unplaced_count);
        assert!(r.placed_count >= 1);
    }

    #[test]
    fn bigger_footprints_leave_more_unplaced() {
        // The Figure-5 effect: same design, looser PBlocks, fewer placed.
        let dev = Device::xc7z020();
        let tight = chain_problem(&dev, 120, 8, 25);
        let loose = chain_problem(&dev, 120, 10, 31);
        let rt = stitch(&dev, &tight, &StitchConfig::fast(7));
        let rl = stitch(&dev, &loose, &StitchConfig::fast(7));
        assert!(
            rl.unplaced_count > rt.unplaced_count,
            "loose {} vs tight {}",
            rl.unplaced_count,
            rt.unplaced_count
        );
    }

    #[test]
    fn impossible_signature_is_unplaceable() {
        let dev = Device::xc7z020();
        let sig = tms_device::ColumnSignature(vec![tms_device::ColumnKind::Bram; 10]);
        let m = MacroBlock {
            name: "impossible".into(),
            signature: sig,
            width: 10,
            height: 10,
            used_slices: 0,
            irregularity: 0.0,
        };
        let mut p = StitchProblem::new(vec![m]);
        p.add_instance(0);
        let r = stitch(&dev, &p, &StitchConfig::fast(1));
        assert_eq!(r.unplaced_count, 1);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let dev = Device::xc7z020();
        let p = chain_problem(&dev, 25, 4, 10);
        let a = stitch(&dev, &p, &StitchConfig::fast(11));
        let b = stitch(&dev, &p, &StitchConfig::fast(11));
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.final_cost, b.final_cost);
        assert_eq!(a.illegal_moves, b.illegal_moves);
        assert_eq!(a.accepted_moves, b.accepted_moves);
        assert_eq!(a.rejected_moves, b.rejected_moves);
    }

    #[test]
    fn crowded_fabric_causes_illegal_moves() {
        let dev = Device::xc7z020();
        // Same instance count of narrow (widely relocatable) blocks; the
        // crowded variant fills ~half of the fabric, the sparse one ~10%,
        // so moves hit occupied cells far more often.
        let crowded = chain_problem(&dev, 60, 3, 40);
        let sparse = chain_problem(&dev, 60, 3, 8);
        let rc = stitch(&dev, &crowded, &StitchConfig::fast(2));
        let rs = stitch(&dev, &sparse, &StitchConfig::fast(2));
        assert_eq!(rc.unplaced_count, 0);
        assert!(
            rc.illegal_moves > rs.illegal_moves,
            "crowded {} vs sparse {}",
            rc.illegal_moves,
            rs.illegal_moves
        );
    }

    #[test]
    fn waste_accounting() {
        let dev = Device::xc7z020();
        let p = chain_problem(&dev, 4, 3, 10);
        let r = stitch(&dev, &p, &StitchConfig::fast(1));
        // used = 3*10*3/4 = 22 per block, waste = 8 per block.
        assert_eq!(r.placed_area(&p), 4 * 30);
        assert_eq!(r.wasted_cells(&p), 4 * 8);
    }

    #[test]
    fn empty_problem_is_trivial() {
        let dev = Device::xc7z020();
        let p = StitchProblem::default();
        let r = stitch(&dev, &p, &StitchConfig::fast(1));
        assert_eq!(r.placed_count, 0);
        assert_eq!(r.final_cost, 0.0);
        assert_eq!(r.total_moves, 0);
    }

    #[test]
    fn convergence_move_is_within_run() {
        let dev = Device::xc7z020();
        let p = chain_problem(&dev, 40, 3, 10);
        let r = stitch(&dev, &p, &StitchConfig::standard(4));
        assert!(r.convergence_move <= r.total_moves);
        assert!(!r.cost_trace.is_empty());
    }
}
