//! Property tests: invariants of the stitcher for arbitrary problems.

#![cfg(test)]

use crate::problem::{MacroBlock, StitchProblem};
use crate::sa::{stitch, StitchConfig};
use proptest::prelude::*;
use tms_device::{Device, Rect};

/// Arbitrary stitching problems on the xc7z020: up to 40 instances of up
/// to 4 unique block shapes, chain-connected.
fn arb_problem() -> impl Strategy<Value = StitchProblem> {
    (
        proptest::collection::vec((1u32..8, 2u32..30, 0u32..3), 1..4),
        1usize..40,
        any::<u64>(),
    )
        .prop_map(|(shapes, n_inst, seed)| {
            let dev = Device::xc7z020();
            let modules: Vec<MacroBlock> = shapes
                .iter()
                .enumerate()
                .map(|(i, &(w, h, x0))| MacroBlock {
                    name: format!("m{i}"),
                    signature: dev.signature(x0 * 7, w),
                    width: w,
                    height: h,
                    used_slices: w * h / 2,
                    irregularity: 0.3,
                })
                .collect();
            let n_mod = modules.len();
            let mut p = StitchProblem::new(modules);
            let ids: Vec<u32> = (0..n_inst)
                .map(|i| p.add_instance((i + seed as usize) % n_mod))
                .collect();
            for pair in ids.windows(2) {
                p.add_net(pair, 1.0 + (seed % 7) as f64);
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placed blocks never overlap and never leave the device, and every
    /// placed block sits on a legal anchor (matching column signature).
    #[test]
    fn placements_are_legal(problem in arb_problem(), seed in 0u64..500) {
        let dev = Device::xc7z020();
        let r = stitch(&dev, &problem, &StitchConfig::fast(seed));
        let mut rects: Vec<Rect> = Vec::new();
        for (i, pos) in r.positions.iter().enumerate() {
            let Some((x, y)) = pos else { continue };
            let b = problem.block_of(i as u32);
            let rect = Rect::new(*x, *y, b.width, b.height);
            prop_assert!(dev.bounds().contains(&rect), "block {i} off device");
            prop_assert_eq!(
                &dev.signature(*x, b.width),
                &b.signature,
                "block {} not on a legal anchor", i
            );
            prop_assert_eq!(*y % b.signature.y_alignment(), 0);
            for other in &rects {
                prop_assert!(!rect.overlaps(other), "overlap at block {}", i);
            }
            rects.push(rect);
        }
    }

    /// Bookkeeping is consistent: placed + unplaced = instances; the final
    /// cost equals a from-scratch recomputation; SA never worsens the
    /// initial cost.
    #[test]
    fn accounting_is_consistent(problem in arb_problem(), seed in 0u64..500) {
        let dev = Device::xc7z020();
        let r = stitch(&dev, &problem, &StitchConfig::fast(seed));
        prop_assert_eq!(r.placed_count + r.unplaced_count, problem.instances.len());
        prop_assert_eq!(r.unplaced.len(), r.unplaced_count);
        if r.late_insertions == 0 {
            // Without late insertions the anneal can only improve the cost.
            prop_assert!(r.final_cost <= r.initial_cost + 1e-9);
        }
        prop_assert!(r.final_cost >= 0.0);
        prop_assert!(r.convergence_move <= r.total_moves);
        // Recompute the cost from scratch.
        let mut expected = 0.0;
        for (ends, weight) in problem.nets.iter().map(|n| (&n.endpoints, n.weight)) {
            let pts: Vec<(f64, f64)> = ends
                .iter()
                .filter_map(|&e| {
                    r.positions[e as usize].map(|(x, y)| {
                        let b = problem.block_of(e);
                        (
                            f64::from(x) + f64::from(b.width) / 2.0,
                            f64::from(y) + f64::from(b.height) / 2.0,
                        )
                    })
                })
                .collect();
            if pts.len() >= 2 {
                let x0 = pts.iter().map(|p| p.0).fold(f64::MAX, f64::min);
                let x1 = pts.iter().map(|p| p.0).fold(f64::MIN, f64::max);
                let y0 = pts.iter().map(|p| p.1).fold(f64::MAX, f64::min);
                let y1 = pts.iter().map(|p| p.1).fold(f64::MIN, f64::max);
                expected += weight * ((x1 - x0) + (y1 - y0));
            }
        }
        prop_assert!((r.final_cost - expected).abs() < 1e-6,
            "tracked {} vs recomputed {}", r.final_cost, expected);
    }
}
