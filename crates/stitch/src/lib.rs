//! # tms-stitch — simulated-annealing placement of pre-implemented macros
//!
//! After every unique module is placed and routed inside its PBlock,
//! RapidWright replicates the implementations and *stitches* them onto the
//! device: a simulated-annealing placer moves the rectangular macros around,
//! minimising the wirelength between blocks. This crate reproduces that
//! stitcher with the two properties the paper's analysis rests on:
//!
//! * **Relocation legality** — a macro may only anchor where the device's
//!   column-kind sequence equals its footprint signature
//!   ([`tms_device::Device::matching_anchors`]) and at vertical offsets
//!   aligned to its BRAM/DSP content. Compact PBlocks have simpler
//!   signatures and therefore many more legal anchors.
//! * **Overlap rejection** — moves landing on occupied fabric are *illegal*
//!   and rejected; oversized, irregular footprints cause more of them,
//!   slowing convergence. [`StitchResult::illegal_moves`] and
//!   [`StitchResult::convergence_move`] quantify the paper's
//!   1.37×-faster-convergence result; [`StitchResult::unplaced`] reproduces
//!   the 68-versus-52 unplaced-module comparison of Figure 5.
//!
//! ```
//! use tms_device::Device;
//! use tms_stitch::{MacroBlock, StitchProblem, StitchConfig, stitch};
//!
//! let dev = Device::xc7z020();
//! let sig = dev.signature(0, 3);
//! let blk = MacroBlock { name: "b".into(), signature: sig, width: 3, height: 10,
//!                        used_slices: 25, irregularity: 0.2 };
//! let mut p = StitchProblem::new(vec![blk]);
//! let a = p.add_instance(0);
//! let b = p.add_instance(0);
//! p.add_net(&[a, b], 1.0);
//! let r = stitch(&dev, &p, &StitchConfig::fast(1));
//! assert_eq!(r.unplaced_count, 0);
//! assert!(r.final_cost <= r.initial_cost);
//! ```

#![warn(missing_docs)]

mod fabric;
pub mod portfolio;
pub mod problem;
mod proptests;
pub mod sa;
pub mod search;

pub use portfolio::{stitch_portfolio, stitch_portfolio_observed, StitchPortfolioReport};
pub use problem::{InterNet, MacroBlock, StitchProblem};
pub use sa::{stitch, stitch_observed, StitchConfig, StitchResult};
pub use search::{StitchSearch, StitchSolution};
