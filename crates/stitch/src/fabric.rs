//! Shared fabric machinery of the stitchers: legal-anchor candidate
//! tables, the occupancy grid, and incremental wirelength accounting.
//!
//! Both the single-run annealer ([`crate::sa`]) and the portfolio search
//! problem ([`crate::search`]) move macros over the same device model;
//! this module holds the pieces they share so the two stay in exact
//! agreement about legality and cost.

use crate::problem::StitchProblem;
use tms_device::{CapacityPrefix, Device};

/// Per-module candidate anchor positions: the x columns whose signature
/// matches, crossed with y rows at the module's vertical alignment.
pub(crate) struct Candidates {
    pub(crate) xs: Vec<u32>,
    pub(crate) y_step: u32,
    pub(crate) y_max: u32, // inclusive max anchor row
}

impl Candidates {
    pub(crate) fn count(&self) -> u64 {
        if self.xs.is_empty() {
            return 0;
        }
        self.xs.len() as u64 * u64::from(self.y_max / self.y_step + 1)
    }

    pub(crate) fn nth(&self, idx: u64) -> (u32, u32) {
        let ys = u64::from(self.y_max / self.y_step + 1);
        let x = self.xs[(idx / ys) as usize];
        let y = (idx % ys) as u32 * self.y_step;
        (x, y)
    }

    /// Candidate index closest to a position (for range-limited moves).
    pub(crate) fn index_near(&self, (x, y): (u32, u32)) -> u64 {
        let ys = u64::from(self.y_max / self.y_step + 1);
        let xi = self.xs.partition_point(|&c| c < x).min(self.xs.len() - 1) as u64;
        let yi = u64::from((y / self.y_step).min(self.y_max / self.y_step));
        xi * ys + yi
    }
}

/// Build the candidate table for every unique module of `problem`.
pub(crate) fn build_candidates(device: &Device, problem: &StitchProblem) -> Vec<Candidates> {
    let rows = device.rows();
    // One prefix build serves every module: the count-prefiltered anchor
    // search skips origins whose column-kind counts already mismatch.
    let prefix = CapacityPrefix::build(device);
    problem
        .modules
        .iter()
        .map(|m| {
            let xs = prefix.matching_anchors(device, &m.signature);
            let y_step = m.signature.y_alignment();
            let y_max = rows.saturating_sub(m.height);
            Candidates { xs, y_step, y_max }
        })
        .collect()
}

/// Instance → indices of the nets it terminates.
pub(crate) fn build_incident(problem: &StitchProblem) -> Vec<Vec<u32>> {
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); problem.instances.len()];
    for (ni, net) in problem.nets.iter().enumerate() {
        for &e in &net.endpoints {
            incident[e as usize].push(ni as u32);
        }
    }
    incident
}

/// Flat occupancy grid over the fabric (0 = free, else instance id + 1).
///
/// Cells are `u16`: the grid is cloned on every portfolio-lane snapshot
/// and population operation, so halving it halves the dominant memcpy.
/// Stitch problems are bounded far below 65k instances.
#[derive(Clone)]
pub(crate) struct Grid {
    pub(crate) w: u32,
    pub(crate) cells: Vec<u16>,
}

impl Grid {
    pub(crate) fn new(w: u32, h: u32) -> Self {
        Grid {
            w,
            cells: vec![0; (w * h) as usize],
        }
    }

    pub(crate) fn is_free(&self, x: u32, y: u32, bw: u32, bh: u32, ignore: u32) -> bool {
        let tag = (ignore + 1) as u16;
        for yy in y..y + bh {
            let row = (yy * self.w + x) as usize;
            for c in &self.cells[row..row + bw as usize] {
                if *c != 0 && *c != tag {
                    return false;
                }
            }
        }
        true
    }

    pub(crate) fn set(&mut self, x: u32, y: u32, bw: u32, bh: u32, v: u32) {
        let v = v as u16;
        for yy in y..y + bh {
            let row = (yy * self.w + x) as usize;
            for c in &mut self.cells[row..row + bw as usize] {
                *c = v;
            }
        }
    }
}

/// Centre of instance `inst` when placed at `pos`.
pub(crate) fn center(
    problem: &StitchProblem,
    inst: u32,
    pos: Option<(u32, u32)>,
) -> Option<(f64, f64)> {
    pos.map(|(x, y)| {
        let b = problem.block_of(inst);
        (
            f64::from(x) + f64::from(b.width) / 2.0,
            f64::from(y) + f64::from(b.height) / 2.0,
        )
    })
}

/// Half-perimeter wirelength of net `net_idx` under `positions`.
pub(crate) fn net_cost(
    problem: &StitchProblem,
    positions: &[Option<(u32, u32)>],
    net_idx: u32,
) -> f64 {
    let net = &problem.nets[net_idx as usize];
    let mut n = 0u32;
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &e in &net.endpoints {
        if let Some((cx, cy)) = center(problem, e, positions[e as usize]) {
            n += 1;
            x0 = x0.min(cx);
            x1 = x1.max(cx);
            y0 = y0.min(cy);
            y1 = y1.max(cy);
        }
    }
    if n < 2 {
        0.0
    } else {
        net.weight * ((x1 - x0) + (y1 - y0))
    }
}

/// Total wirelength under `positions`.
pub(crate) fn total_cost(problem: &StitchProblem, positions: &[Option<(u32, u32)>]) -> f64 {
    (0..problem.nets.len() as u32)
        .map(|i| net_cost(problem, positions, i))
        .sum()
}

/// Sum of the costs of the nets incident to `inst`.
pub(crate) fn incident_cost(
    problem: &StitchProblem,
    incident: &[Vec<u32>],
    positions: &[Option<(u32, u32)>],
    inst: u32,
) -> f64 {
    incident[inst as usize]
        .iter()
        .map(|&n| net_cost(problem, positions, n))
        .sum()
}
