//! [`SearchProblem`] adapter: stitch placement as a portfolio problem.
//!
//! [`StitchSearch`] exposes the macro-stitching move set — range-limited
//! relocations over legal anchors, always-legal same-module swaps, plus
//! always-accepted insertion repairs for unplaced blocks — through the
//! [`tms_search::SearchProblem`] trait,
//! so the multi-lane portfolio in [`tms_search`] can drive it. It shares
//! the candidate tables, occupancy grid and incremental wirelength
//! accounting of the private `fabric` module with the single-run annealer, keeping
//! both in exact agreement about legality and cost.

use crate::fabric::{
    build_candidates, build_incident, incident_cost, total_cost, Candidates, Grid,
};
use crate::problem::StitchProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tms_device::Device;
use tms_search::{Proposal, Score, SearchProblem};

/// A complete stitch placement owned by one portfolio lane.
#[derive(Clone)]
pub struct StitchSolution {
    positions: Vec<Option<(u32, u32)>>,
    grid: Grid,
    cost: f64,
    unplaced: u64,
}

impl StitchSolution {
    /// Anchor position of each instance (`None` = unplaced).
    pub fn positions(&self) -> &[Option<(u32, u32)>] {
        &self.positions
    }

    /// Wirelength cost of the placement.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of unplaced instances.
    pub fn unplaced(&self) -> u64 {
        self.unplaced
    }
}

/// Token reverting one applied move (relocation or swap).
pub struct StitchUndo {
    kind: UndoKind,
}

enum UndoKind {
    Move {
        inst: u32,
        old: Option<(u32, u32)>,
        delta: f64,
    },
    Swap {
        a: u32,
        b: u32,
        delta: f64,
    },
}

/// Stitch placement as a [`SearchProblem`]: shared read-only problem data
/// (candidate anchors, net incidence, fabric dimensions) precomputed once
/// and driven concurrently by every portfolio lane.
pub struct StitchSearch<'p> {
    problem: &'p StitchProblem,
    candidates: Vec<Candidates>,
    incident: Vec<Vec<u32>>,
    width: u32,
    rows: u32,
    /// Instances sorted by descending footprint area (greedy/crossover order).
    order: Vec<u32>,
    /// Instance ids grouped by module: swap partners share a footprint.
    groups: Vec<Vec<u32>>,
}

impl<'p> StitchSearch<'p> {
    /// Precompute the shared search tables for `problem` on `device`.
    pub fn new(device: &Device, problem: &'p StitchProblem) -> Self {
        let mut order: Vec<u32> = (0..problem.instances.len() as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(problem.block_of(i).area()));
        let mut groups = vec![Vec::new(); problem.modules.len()];
        for (i, &m) in problem.instances.iter().enumerate() {
            groups[m].push(i as u32);
        }
        StitchSearch {
            problem,
            candidates: build_candidates(device, problem),
            incident: build_incident(problem),
            width: device.width(),
            rows: device.rows(),
            order,
            groups,
        }
    }

    /// The stitch problem this search places.
    pub fn problem(&self) -> &StitchProblem {
        self.problem
    }

    fn cand_of(&self, inst: u32) -> &Candidates {
        &self.candidates[self.problem.instances[inst as usize]]
    }

    /// Move `inst` to the (legal) anchor `(x, y)`, returning the cost delta.
    fn apply_move(&self, s: &mut StitchSolution, inst: u32, x: u32, y: u32) -> f64 {
        let b = self.problem.block_of(inst);
        let before = incident_cost(self.problem, &self.incident, &s.positions, inst);
        if let Some((ox, oy)) = s.positions[inst as usize] {
            s.grid.set(ox, oy, b.width, b.height, 0);
        } else {
            s.unplaced -= 1;
        }
        s.grid.set(x, y, b.width, b.height, inst + 1);
        s.positions[inst as usize] = Some((x, y));
        let after = incident_cost(self.problem, &self.incident, &s.positions, inst);
        s.cost += after - before;
        after - before
    }

    /// Exchange the anchors of two placed same-module instances: identical
    /// footprints, so the move is always legal on any occupancy pattern.
    fn swap_cells(&self, s: &mut StitchSolution, a: u32, b: u32) {
        let pa = s.positions[a as usize].expect("swap of a placed pair");
        let pb = s.positions[b as usize].expect("swap of a placed pair");
        let blk = self.problem.block_of(a);
        s.grid.set(pa.0, pa.1, blk.width, blk.height, b + 1);
        s.grid.set(pb.0, pb.1, blk.width, blk.height, a + 1);
        s.positions[a as usize] = Some(pb);
        s.positions[b as usize] = Some(pa);
    }

    /// Swap `a` and `b` (placed, same module), returning the cost delta.
    fn apply_swap(&self, s: &mut StitchSolution, a: u32, b: u32) -> f64 {
        let before = incident_cost(self.problem, &self.incident, &s.positions, a)
            + incident_cost(self.problem, &self.incident, &s.positions, b);
        self.swap_cells(s, a, b);
        let after = incident_cost(self.problem, &self.incident, &s.positions, a)
            + incident_cost(self.problem, &self.incident, &s.positions, b);
        s.cost += after - before;
        after - before
    }

    /// Insert an unplaced `inst` at the first free candidate scanning from
    /// a random start (even fabric fill), returning the cost delta.
    fn try_insert(&self, s: &mut StitchSolution, inst: u32, rng: &mut StdRng) -> Option<f64> {
        if s.positions[inst as usize].is_some() {
            return None;
        }
        let b = self.problem.block_of(inst);
        let cand = self.cand_of(inst);
        let count = cand.count();
        if count == 0 {
            return None;
        }
        let start = rng.gen_range(0..count);
        for k in 0..count {
            let (x, y) = cand.nth((start + k) % count);
            if s.grid.is_free(x, y, b.width, b.height, inst) {
                return Some(self.apply_move(s, inst, x, y));
            }
        }
        None
    }
}

impl SearchProblem for StitchSearch<'_> {
    type Solution = StitchSolution;
    type Undo = StitchUndo;

    /// Greedy legalisation, largest blocks first, scanning candidates from
    /// seeded random starts — the same construction the single-run
    /// annealer uses.
    fn initial(&self, seed: u64) -> StitchSolution {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.problem.instances.len();
        let mut s = StitchSolution {
            positions: vec![None; n],
            grid: Grid::new(self.width, self.rows),
            cost: 0.0,
            unplaced: n as u64,
        };
        for &inst in &self.order {
            self.try_insert(&mut s, inst, &mut rng);
        }
        s.cost = total_cost(self.problem, &s.positions);
        s
    }

    fn score(&self, s: &StitchSolution) -> Score {
        Score {
            infeasible: s.unplaced,
            cost: s.cost,
        }
    }

    fn propose(
        &self,
        s: &mut StitchSolution,
        temp_ratio: f64,
        rng: &mut StdRng,
    ) -> Proposal<StitchUndo> {
        let n_inst = self.problem.instances.len() as u32;
        if n_inst == 0 {
            return Proposal::Skip;
        }
        let inst = rng.gen_range(0..n_inst);
        // Drawing an unplaced instance becomes a repair attempt: Committed
        // (never undone) — placing a block outranks any wirelength change.
        if s.positions[inst as usize].is_none() {
            return match self.try_insert(s, inst, rng) {
                Some(delta) => Proposal::Committed {
                    delta,
                    infeasible_delta: -1,
                },
                None => Proposal::Illegal,
            };
        }
        let cand = self.cand_of(inst);
        let count = cand.count();
        if count == 0 {
            return Proposal::Illegal;
        }
        // Same-module swap: on a dense fabric most relocation targets are
        // occupied, but exchanging two identical footprints is always
        // legal (and cheaper to evaluate than a legality scan), so most
        // proposals swap.
        if rng.gen_range(0..4u32) < 3 {
            let group = &self.groups[self.problem.instances[inst as usize]];
            if group.len() > 1 {
                let other = group[rng.gen_range(0..group.len() as u32) as usize];
                if other != inst && s.positions[other as usize].is_some() {
                    let delta = self.apply_swap(s, inst, other);
                    return Proposal::Applied {
                        delta,
                        undo: StitchUndo {
                            kind: UndoKind::Swap {
                                a: inst,
                                b: other,
                                delta,
                            },
                        },
                    };
                }
            }
            return Proposal::Illegal;
        }
        // VPR-style range limiting via the lane's temperature ratio.
        let window = ((temp_ratio.clamp(0.02, 1.0) * count as f64).max(8.0)) as u64;
        let (x, y) = if window >= count {
            cand.nth(rng.gen_range(0..count))
        } else {
            let cur = s.positions[inst as usize].unwrap();
            let cur_idx = cand.index_near(cur);
            let lo = cur_idx.saturating_sub(window / 2);
            let hi = (lo + window).min(count);
            cand.nth(rng.gen_range(lo..hi))
        };
        if s.positions[inst as usize] == Some((x, y)) {
            return Proposal::Illegal;
        }
        let b = self.problem.block_of(inst);
        if !s.grid.is_free(x, y, b.width, b.height, inst) {
            return Proposal::Illegal;
        }
        let old = s.positions[inst as usize];
        let delta = self.apply_move(s, inst, x, y);
        Proposal::Applied {
            delta,
            undo: StitchUndo {
                kind: UndoKind::Move { inst, old, delta },
            },
        }
    }

    fn undo(&self, s: &mut StitchSolution, undo: StitchUndo) {
        match undo.kind {
            UndoKind::Move { inst, old, delta } => {
                let b = self.problem.block_of(inst);
                if let Some((x, y)) = s.positions[inst as usize] {
                    s.grid.set(x, y, b.width, b.height, 0);
                }
                if let Some((ox, oy)) = old {
                    s.grid.set(ox, oy, b.width, b.height, inst + 1);
                }
                s.positions[inst as usize] = old;
                s.cost -= delta;
            }
            UndoKind::Swap { a, b, delta } => {
                self.swap_cells(s, a, b);
                // Exact restoration: subtract the recorded delta instead of
                // re-deriving it, so roundtrips are bit-identical.
                s.cost -= delta;
            }
        }
    }

    fn neighborhood(&self) -> u64 {
        // Instances × a bounded per-instance fan-out; the lanes clamp the
        // equilibrium inner loop to [64, 16384] anyway.
        (self.problem.instances.len() as u64).saturating_mul(32)
    }

    /// Path-relinking recombination: clone parent `a`, then graft a random
    /// contiguous window (quarter) of the area-ordered instance list
    /// toward parent `b`'s anchors via incremental legal relocations.
    /// Rebuilding a child from scratch — the classic uniform crossover —
    /// costs a full greedy construction plus a global cost recompute,
    /// which on placement-sized problems is more than an entire SA round;
    /// grafting touches only the window and keeps the incremental cost
    /// bookkeeping exact.
    fn crossover(
        &self,
        a: &StitchSolution,
        b: &StitchSolution,
        rng: &mut StdRng,
    ) -> StitchSolution {
        let mut child = a.clone();
        let n = self.order.len();
        if n == 0 {
            return child;
        }
        let len = (n / 4).max(1);
        let start = rng.gen_range(0..n as u32) as usize;
        for k in 0..len {
            let inst = self.order[(start + k) % n];
            let Some((x, y)) = b.positions[inst as usize] else {
                continue;
            };
            if child.positions[inst as usize] == Some((x, y)) {
                continue;
            }
            let blk = self.problem.block_of(inst);
            // `is_free` ignores cells owned by `inst` itself, so a placed
            // instance can slide onto an overlapping target.
            if child.grid.is_free(x, y, blk.width, blk.height, inst) {
                self.apply_move(&mut child, inst, x, y);
            }
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MacroBlock;

    fn block(dev: &Device, w: u32, h: u32) -> MacroBlock {
        MacroBlock {
            name: "m".into(),
            signature: dev.signature(0, w),
            width: w,
            height: h,
            used_slices: w * h / 2,
            irregularity: 0.2,
        }
    }

    fn chain(dev: &Device, n: u32, w: u32, h: u32) -> StitchProblem {
        let mut p = StitchProblem::new(vec![block(dev, w, h)]);
        let ids: Vec<u32> = (0..n).map(|_| p.add_instance(0)).collect();
        for pair in ids.windows(2) {
            p.add_net(pair, 1.0);
        }
        p
    }

    fn assert_consistent(search: &StitchSearch<'_>, s: &StitchSolution) {
        // Cached cost and unplaced count match a from-scratch recompute.
        let true_cost = total_cost(search.problem, &s.positions);
        assert!(
            (s.cost - true_cost).abs() < 1e-6,
            "cached {} vs true {}",
            s.cost,
            true_cost
        );
        let true_unplaced = s.positions.iter().filter(|p| p.is_none()).count() as u64;
        assert_eq!(s.unplaced, true_unplaced);
        // No two placed footprints overlap.
        for (i, pi) in s.positions.iter().enumerate() {
            let Some((xi, yi)) = *pi else { continue };
            let bi = search.problem.block_of(i as u32);
            let ri = tms_device::Rect::new(xi, yi, bi.width, bi.height);
            for (j, pj) in s.positions.iter().enumerate().take(i) {
                let Some((xj, yj)) = *pj else { continue };
                let bj = search.problem.block_of(j as u32);
                let rj = tms_device::Rect::new(xj, yj, bj.width, bj.height);
                assert!(!ri.overlaps(&rj), "{i} and {j} overlap");
            }
        }
    }

    #[test]
    fn initial_is_legal_and_deterministic() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 25, 3, 10);
        let search = StitchSearch::new(&dev, &p);
        let a = search.initial(42);
        let b = search.initial(42);
        assert_eq!(a.positions, b.positions);
        assert_consistent(&search, &a);
        assert_eq!(a.unplaced, 0);
    }

    #[test]
    fn propose_undo_roundtrips_exactly() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 20, 3, 12);
        let search = StitchSearch::new(&dev, &p);
        let mut s = search.initial(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut applied = 0;
        for _ in 0..500 {
            let snapshot = s.positions.clone();
            match search.propose(&mut s, 0.5, &mut rng) {
                Proposal::Applied { undo, .. } => {
                    applied += 1;
                    search.undo(&mut s, undo);
                    assert_eq!(s.positions, snapshot, "undo must restore positions");
                }
                Proposal::Committed { .. } => {}
                Proposal::Illegal | Proposal::Skip => {}
            }
            assert_consistent(&search, &s);
        }
        assert!(applied > 50, "only {applied} applied moves in 500");
    }

    #[test]
    fn committed_repairs_reduce_unplaced() {
        let dev = Device::xc7z020();
        // Oversubscribed: not everything fits, so the initial solution has
        // unplaced blocks and repair proposals fire.
        let p = chain(&dev, 120, 8, 25);
        let search = StitchSearch::new(&dev, &p);
        let mut s = search.initial(3);
        assert!(s.unplaced > 0);
        let before = s.unplaced;
        let mut rng = StdRng::seed_from_u64(4);
        let mut committed = 0;
        for _ in 0..4000 {
            if let Proposal::Committed {
                infeasible_delta, ..
            } = search.propose(&mut s, 1.0, &mut rng)
            {
                assert_eq!(infeasible_delta, -1);
                committed += 1;
            }
        }
        assert_consistent(&search, &s);
        assert_eq!(s.unplaced, before - committed);
    }

    #[test]
    fn crossover_children_are_legal() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 30, 3, 10);
        let search = StitchSearch::new(&dev, &p);
        let a = search.initial(10);
        let b = search.initial(11);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let child = search.crossover(&a, &b, &mut rng);
            assert_consistent(&search, &child);
            // Roomy device: the repair pass places everything.
            assert_eq!(child.unplaced, 0);
        }
    }

    #[test]
    fn scores_match_solution_state() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 15, 3, 10);
        let search = StitchSearch::new(&dev, &p);
        let s = search.initial(7);
        let score = search.score(&s);
        assert_eq!(score.infeasible, s.unplaced);
        assert!((score.cost - s.cost).abs() < 1e-12);
    }
}
