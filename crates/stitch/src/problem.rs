//! The stitching problem: macros, instances, inter-block nets.

use tms_device::ColumnSignature;

/// One unique pre-implemented module, ready for replication.
#[derive(Debug, Clone)]
pub struct MacroBlock {
    /// Module name.
    pub name: String,
    /// Column-kind sequence of its PBlock (relocation signature).
    pub signature: ColumnSignature,
    /// Footprint width in columns.
    pub width: u32,
    /// Footprint height in rows.
    pub height: u32,
    /// Slices actually occupied inside the footprint.
    pub used_slices: u32,
    /// Dead-area fraction of the footprint (Figure 3 irregularity).
    pub irregularity: f64,
}

impl MacroBlock {
    /// Footprint area in grid cells.
    pub fn area(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }
}

/// An inter-block net of the block design.
#[derive(Debug, Clone)]
pub struct InterNet {
    /// Instance indices it connects.
    pub endpoints: Vec<u32>,
    /// Net weight (bus width).
    pub weight: f64,
}

/// A full stitching problem: unique blocks, their instances, and the nets
/// of the block diagram.
#[derive(Debug, Clone, Default)]
pub struct StitchProblem {
    /// Unique modules.
    pub modules: Vec<MacroBlock>,
    /// Instance table: each entry is an index into `modules`.
    pub instances: Vec<usize>,
    /// Inter-block nets over instance indices.
    pub nets: Vec<InterNet>,
}

impl StitchProblem {
    /// Start a problem from its unique modules.
    pub fn new(modules: Vec<MacroBlock>) -> Self {
        StitchProblem {
            modules,
            instances: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Add an instance of module `module_idx`; returns its instance index.
    pub fn add_instance(&mut self, module_idx: usize) -> u32 {
        assert!(module_idx < self.modules.len(), "unknown module index");
        let id = self.instances.len() as u32;
        self.instances.push(module_idx);
        id
    }

    /// Add an inter-block net over `endpoints` with `weight`.
    pub fn add_net(&mut self, endpoints: &[u32], weight: f64) {
        debug_assert!(endpoints
            .iter()
            .all(|&e| (e as usize) < self.instances.len()));
        self.nets.push(InterNet {
            endpoints: endpoints.to_vec(),
            weight,
        });
    }

    /// The macro of instance `id`.
    pub fn block_of(&self, id: u32) -> &MacroBlock {
        &self.modules[self.instances[id as usize]]
    }

    /// Total footprint area of all instances (the quantity that, compared
    /// to the device area, predicts how many blocks will fit).
    pub fn total_area(&self) -> u64 {
        self.instances.iter().map(|&m| self.modules[m].area()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::ColumnKind;

    fn block(w: u32, h: u32) -> MacroBlock {
        MacroBlock {
            name: format!("b{w}x{h}"),
            signature: ColumnSignature(vec![ColumnKind::ClbL; w as usize]),
            width: w,
            height: h,
            used_slices: w * h / 2,
            irregularity: 0.1,
        }
    }

    #[test]
    fn instances_and_nets() {
        let mut p = StitchProblem::new(vec![block(2, 4), block(3, 5)]);
        let a = p.add_instance(0);
        let b = p.add_instance(1);
        let c = p.add_instance(1);
        p.add_net(&[a, b], 8.0);
        p.add_net(&[b, c], 16.0);
        assert_eq!(p.instances.len(), 3);
        assert_eq!(p.block_of(c).width, 3);
        assert_eq!(p.total_area(), 8 + 15 + 15);
    }

    #[test]
    #[should_panic(expected = "unknown module index")]
    fn bad_module_index_panics() {
        let mut p = StitchProblem::new(vec![block(1, 1)]);
        p.add_instance(3);
    }

    #[test]
    fn area_formula() {
        assert_eq!(block(4, 7).area(), 28);
    }
}
