//! Portfolio stitching: drive [`crate::search::StitchSearch`] with the
//! multi-lane search portfolio of [`tms_search`] and map the outcome back
//! onto the stitcher's own [`StitchResult`] shape.
//!
//! The portfolio runs several independently-seeded SA lanes plus an
//! evolutionary lane over the same placement problem, exchanging the best
//! placement at deterministic round barriers. Same portfolio seed ⇒ same
//! best placement, bit-identical for every thread count.

use crate::sa::StitchResult;
use crate::search::StitchSearch;
use crate::StitchProblem;
use tms_device::Device;
use tms_search::{LaneKind, LaneReport, PortfolioConfig, Score};

/// Portfolio-level accounting kept alongside the mapped [`StitchResult`].
#[derive(Debug, Clone)]
pub struct StitchPortfolioReport {
    /// Exchange rounds actually run.
    pub rounds_run: u32,
    /// Wall-clock time of the whole portfolio run.
    pub wall: std::time::Duration,
    /// Whether the wall-clock deadline ended the run.
    pub deadline_hit: bool,
    /// Whether the stall-stop rule ended the run.
    pub stalled_out: bool,
    /// Exchange barriers executed.
    pub exchanges: u64,
    /// Global-best adoptions across all lanes.
    pub adoptions: u64,
    /// Cruz-Chávez restarts across all SA lanes.
    pub restarts: u64,
    /// Index of the winning lane.
    pub winner: usize,
    /// Kind of the winning lane.
    pub winner_kind: LaneKind,
    /// Best score (unplaced count + wirelength) of the returned placement.
    pub best_score: Score,
    /// Per-lane reports, SA lanes first.
    pub lanes: Vec<LaneReport>,
}

/// Run the search portfolio on a stitch problem (no telemetry).
pub fn stitch_portfolio(
    device: &Device,
    problem: &StitchProblem,
    cfg: &PortfolioConfig,
) -> (StitchResult, StitchPortfolioReport) {
    stitch_portfolio_observed(device, problem, cfg, tms_obs::noop())
}

/// [`stitch_portfolio`] with telemetry: the portfolio's `search.*`
/// counters and `search.portfolio` span flow through `obs`, plus the
/// stitcher's own `stitch.*` counters so portfolio runs and single-run
/// anneals stay comparable on one dashboard.
pub fn stitch_portfolio_observed(
    device: &Device,
    problem: &StitchProblem,
    cfg: &PortfolioConfig,
    obs: &dyn tms_obs::Recorder,
) -> (StitchResult, StitchPortfolioReport) {
    let search = StitchSearch::new(device, problem);
    let out = tms_search::run_portfolio_observed(&search, cfg, obs);

    let positions = out.best.positions().to_vec();
    let unplaced: Vec<u32> = positions
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_none())
        .map(|(i, _)| i as u32)
        .collect();

    // The single-run result reports the greedy-legalisation cost as its
    // baseline; lane 0's initial solution is the portfolio's equivalent.
    let initial_cost = out.lanes.first().map_or(0.0, |l| l.initial_cost);
    let final_cost = out.best_score.cost;

    // Convergence over the exchange trace: first round whose global best
    // is within 1% of the final improvement.
    let improvement = (initial_cost - final_cost).max(1e-12);
    let threshold = final_cost + 0.01 * improvement;
    let convergence_move = out
        .trace
        .iter()
        .find(|&&(_, c)| c <= threshold)
        .map(|&(m, _)| m)
        .unwrap_or(out.total_moves);
    let best_move = out
        .trace
        .iter()
        .find(|&&(_, c)| c <= final_cost + 1e-9)
        .map(|&(m, _)| m)
        .unwrap_or(out.total_moves);

    // Winner temperature; an EA winner has no schedule, so fall back to
    // the first SA lane's terminal temperature.
    let final_temp = out.lanes[out.winner]
        .temps
        .last()
        .or_else(|| out.lanes.iter().find_map(|l| l.temps.last()))
        .copied()
        .unwrap_or(0.0);

    let result = StitchResult {
        placed_count: positions.len() - unplaced.len(),
        unplaced_count: unplaced.len(),
        positions,
        unplaced,
        initial_cost,
        final_cost,
        illegal_moves: out.lanes.iter().map(|l| l.illegal).sum(),
        accepted_moves: out.lanes.iter().map(|l| l.accepted).sum(),
        rejected_moves: out.lanes.iter().map(|l| l.rejected).sum(),
        final_temp,
        late_insertions: 0,
        total_moves: out.total_moves,
        convergence_move,
        best_move,
        cost_trace: out.trace.clone(),
    };

    obs.count("stitch.placed", result.placed_count as u64);
    obs.count("stitch.unplaced", result.unplaced_count as u64);
    obs.count("stitch.moves", result.total_moves);
    obs.count("stitch.accepted", result.accepted_moves);
    obs.count("stitch.rejected", result.rejected_moves);
    obs.count("stitch.illegal", result.illegal_moves);
    obs.observe("stitch.cost", result.final_cost);
    obs.observe("stitch.final_temp", result.final_temp);

    let report = StitchPortfolioReport {
        rounds_run: out.rounds_run,
        wall: out.wall,
        deadline_hit: out.deadline_hit,
        stalled_out: out.stalled_out,
        exchanges: out.exchanges,
        adoptions: out.adoptions,
        restarts: out.lanes.iter().map(|l| l.restarts).sum(),
        winner: out.winner,
        winner_kind: out.lanes[out.winner].kind,
        best_score: out.best_score,
        lanes: out.lanes,
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MacroBlock;
    use crate::sa::{stitch, StitchConfig};

    fn block(dev: &Device, w: u32, h: u32) -> MacroBlock {
        MacroBlock {
            name: "m".into(),
            signature: dev.signature(0, w),
            width: w,
            height: h,
            used_slices: w * h / 2,
            irregularity: 0.2,
        }
    }

    fn chain(dev: &Device, n: u32, w: u32, h: u32) -> StitchProblem {
        let mut p = StitchProblem::new(vec![block(dev, w, h)]);
        let ids: Vec<u32> = (0..n).map(|_| p.add_instance(0)).collect();
        for pair in ids.windows(2) {
            p.add_net(pair, 1.0);
        }
        p
    }

    fn quick_cfg(seed: u64) -> PortfolioConfig {
        PortfolioConfig {
            rounds: 4,
            moves_per_round: 2_000,
            stall_stop: 0,
            ..PortfolioConfig::new(seed)
        }
    }

    #[test]
    fn portfolio_placement_is_legal_and_complete() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 25, 3, 10);
        let (r, report) = stitch_portfolio(&dev, &p, &quick_cfg(1));
        assert_eq!(r.unplaced_count, 0);
        assert_eq!(r.placed_count, 25);
        assert_eq!(report.lanes.len(), 4);
        assert!(report.rounds_run >= 1);
        for i in 0..25u32 {
            for j in 0..i {
                let (a, b) = (
                    r.positions[i as usize].unwrap(),
                    r.positions[j as usize].unwrap(),
                );
                let ra = tms_device::Rect::new(a.0, a.1, 3, 10);
                let rb = tms_device::Rect::new(b.0, b.1, 3, 10);
                assert!(!ra.overlaps(&rb), "{i} and {j} overlap");
            }
        }
    }

    #[test]
    fn thread_count_is_invisible_on_a_real_stitch_problem() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 30, 3, 12);
        let mut cfg = quick_cfg(7);
        cfg.threads = 1;
        let (a, ra) = stitch_portfolio(&dev, &p, &cfg);
        cfg.threads = 8;
        let (b, rb) = stitch_portfolio(&dev, &p, &cfg);
        assert_eq!(a.positions, b.positions, "thread count changed placement");
        assert_eq!(a.final_cost, b.final_cost);
        assert_eq!(a.accepted_moves, b.accepted_moves);
        assert_eq!(a.illegal_moves, b.illegal_moves);
        assert_eq!(ra.winner, rb.winner);
        assert_eq!(ra.rounds_run, rb.rounds_run);
    }

    #[test]
    fn deadline_bounds_the_portfolio() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 40, 3, 10);
        let cfg = PortfolioConfig {
            rounds: 10_000,
            moves_per_round: 2_000,
            stall_stop: 0,
            ..PortfolioConfig::new(2)
        }
        .with_deadline_ms(150);
        let started = std::time::Instant::now();
        let (_, report) = stitch_portfolio(&dev, &p, &cfg);
        let wall = started.elapsed();
        assert!(report.deadline_hit);
        assert!(
            wall < std::time::Duration::from_millis(2_000),
            "took {wall:?} against a 150ms budget"
        );
    }

    #[test]
    fn portfolio_matches_or_beats_an_equal_budget_single_run() {
        let dev = Device::xc7z020();
        let p = chain(&dev, 30, 3, 12);
        let (portfolio, _) = stitch_portfolio(&dev, &p, &quick_cfg(5));
        // Single-run anneal with the same total move budget.
        let single = stitch(
            &dev,
            &p,
            &StitchConfig {
                max_moves: 4 * 4 * 2_000,
                ..StitchConfig::fast(5)
            },
        );
        assert_eq!(portfolio.unplaced_count, 0);
        assert!(
            portfolio.final_cost <= single.final_cost * 1.10,
            "portfolio {} much worse than single-run {}",
            portfolio.final_cost,
            single.final_cost
        );
    }

    #[test]
    fn observed_portfolio_records_both_metric_families() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let p = chain(&dev, 20, 3, 10);
        let sink = AggregatingSink::new();
        let (r, report) = stitch_portfolio_observed(&dev, &p, &quick_cfg(3), &sink);
        // Portfolio family…
        assert_eq!(sink.counter("search.rounds"), u64::from(report.rounds_run));
        assert_eq!(sink.counter("search.lane.sa"), 3);
        assert_eq!(sink.counter("search.lane.ea"), 1);
        // …and the stitcher family, reconciling with the mapped result.
        assert_eq!(sink.counter("stitch.placed"), r.placed_count as u64);
        assert_eq!(sink.counter("stitch.accepted"), r.accepted_moves);
        assert_eq!(sink.counter("stitch.moves"), r.total_moves);
        let (_, cost) = sink.observation("stitch.cost").unwrap();
        assert!((cost - r.final_cost).abs() < 1e-9);
    }
}
