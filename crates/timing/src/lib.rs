//! # tms-timing — longest-path estimation for placed modules
//!
//! Reproduces the timing-side observations of Table I and Section IV: a
//! module squeezed into a tighter PBlock uses fewer slices but routes under
//! higher congestion, so its longest path gets *worse*; PBlocks spanning
//! clock-distribution columns or multiple clock regions pay extra delay
//! (the paper cites its reference \[19\] for the clock-column effect).
//!
//! The model is a classic static estimate:
//!
//! ```text
//! t = t_clk_q + lut_levels · (t_lut + t_net0 · span(S) · detour(u))
//!             + carry_levels · t_carry_bit + penalties + t_su
//! ```
//!
//! where the netlist's combinational depth is split into LUT levels and
//! (much faster) dedicated-carry levels, `span(S)` is the Rent-style mean
//! net length at occupied size `S`, and `detour(u)` the congestion blow-up
//! at utilisation `u`.
//!
//! ```
//! use tms_device::{Device, Rect};
//! use tms_netlist::{NetlistBuilder, ControlSet};
//! use tms_place::{place_in_region, PlacementModel};
//! use tms_synth::pack;
//! use tms_timing::{estimate, TimingModel};
//!
//! let mut b = NetlistBuilder::new("t");
//! let l1 = b.lut(4);
//! let l2 = b.lut(4);
//! b.connect(l1, &[l2]);
//! let nl = b.finish();
//! let (stats, packing) = (nl.stats(), pack(&nl.stats()));
//! let dev = Device::xc7z020();
//! let p = place_in_region(&stats, &packing, &dev, &Rect::new(0, 0, 4, 4),
//!                         &PlacementModel::deterministic(), 0).unwrap();
//! let t = estimate(&stats, &p, &dev, &TimingModel::default());
//! assert!(t.longest_path_ns > 0.0);
//! ```

#![warn(missing_docs)]

use tms_device::Device;
use tms_netlist::NetlistStats;
use tms_place::Placement;

/// Delay constants of the timing estimate (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Clock-to-Q of the launching flip-flop.
    pub t_clk_q: f64,
    /// Setup time of the capturing flip-flop.
    pub t_su: f64,
    /// LUT propagation delay per logic level.
    pub t_lut: f64,
    /// Propagation delay per carry bit (dedicated carry wiring is far
    /// faster than general LUT levels).
    pub t_carry_bit: f64,
    /// Net delay scale per logic level.
    pub t_net0: f64,
    /// Rent-style span growth exponent (matches the placement model).
    pub rent_exp: f64,
    /// Congestion exponent for net delay: `(1 - u)^-detour_exp`.
    pub detour_exp: f64,
    /// Penalty per clock-distribution column inside the placement region.
    pub clock_col_penalty: f64,
    /// Penalty per extra clock region the placement spans vertically.
    pub region_cross_penalty: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            t_clk_q: 0.45,
            t_su: 0.15,
            t_lut: 0.40,
            t_carry_bit: 0.025,
            t_net0: 0.20,
            rent_exp: 0.12,
            detour_exp: 0.20,
            clock_col_penalty: 0.30,
            region_cross_penalty: 0.20,
        }
    }
}

/// Decomposed longest-path estimate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingReport {
    /// Total longest path in nanoseconds.
    pub longest_path_ns: f64,
    /// Logic (LUT) contribution.
    pub logic_ns: f64,
    /// Routing contribution.
    pub net_ns: f64,
    /// Clock-column and region-crossing penalties.
    pub penalty_ns: f64,
    /// Maximum clock frequency implied by the path, in MHz.
    pub fmax_mhz: f64,
}

/// Estimate the longest path of a placed module.
pub fn estimate(
    stats: &NetlistStats,
    placement: &Placement,
    device: &Device,
    model: &TimingModel,
) -> TimingReport {
    // Split the combinational depth into LUT levels (slow: general logic
    // plus routing per level) and carry levels (fast dedicated wiring).
    // `logic_depth` counts both; a path through the longest chain pays
    // carry-bit delays instead of LUT delays for those levels.
    let carry_levels = f64::from(stats.longest_carry_chain().min(stats.logic_depth));
    let lut_levels = f64::from(stats.logic_depth.max(1)) - carry_levels;
    let lut_levels = lut_levels.max(1.0);
    let s = f64::from(placement.used_slices.max(1));
    let u = placement.utilization.clamp(0.0, 0.995);
    let span = s.powf(model.rent_exp);
    let detour = (1.0 - u).powf(-model.detour_exp);

    let logic_ns = lut_levels * model.t_lut + carry_levels * model.t_carry_bit;
    let net_ns = lut_levels * model.t_net0 * span * detour;
    let clock_cols = f64::from(device.clock_columns_in(&placement.region));
    let regions = f64::from(
        device
            .regions_spanned(placement.region.y, placement.region.h)
            .saturating_sub(1),
    );
    let penalty_ns = clock_cols * model.clock_col_penalty + regions * model.region_cross_penalty;

    let longest_path_ns = model.t_clk_q + logic_ns + net_ns + penalty_ns + model.t_su;
    TimingReport {
        longest_path_ns,
        logic_ns,
        net_ns,
        penalty_ns,
        fmax_mhz: 1_000.0 / longest_path_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Rect;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::{place_in_region, PlacementModel};
    use tms_synth::pack;

    fn chain_module(depth: u32, width: u32) -> (NetlistStats, tms_synth::PackingReport) {
        let mut b = NetlistBuilder::new("tm");
        let cs = ControlSet::basic();
        for _ in 0..width {
            let mut prev = b.ff(cs);
            for _ in 0..depth {
                let l = b.lut(4);
                b.connect(prev, &[l]);
                prev = l;
            }
            let out = b.ff(cs);
            b.connect(prev, &[out]);
        }
        let stats = b.finish().stats();
        let packing = pack(&stats);
        (stats, packing)
    }

    fn placed(m: &(NetlistStats, tms_synth::PackingReport), side: u32) -> Placement {
        let dev = Device::xc7z020();
        place_in_region(
            &m.0,
            &m.1,
            &dev,
            &Rect::new(0, 0, side, side),
            &PlacementModel::deterministic(),
            0,
        )
        .unwrap()
    }

    #[test]
    fn tighter_region_worsens_timing() {
        // The Table-I effect: CF 1 timing is worse than CF 1.5 timing.
        let dev = Device::xc7z020();
        let m = chain_module(8, 80);
        let required = m.1.required_slices;
        let tight_side = (f64::from(required).sqrt().ceil() as u32) + 1;
        let tight = placed(&m, tight_side);
        let loose = placed(&m, tight_side * 2);
        let tm = TimingModel::default();
        let t_tight = estimate(&m.0, &tight, &dev, &tm);
        let t_loose = estimate(&m.0, &loose, &dev, &tm);
        assert!(
            t_tight.longest_path_ns > t_loose.longest_path_ns,
            "tight {} vs loose {}",
            t_tight.longest_path_ns,
            t_loose.longest_path_ns
        );
    }

    #[test]
    fn deeper_logic_is_slower() {
        let dev = Device::xc7z020();
        let shallow = chain_module(3, 40);
        let deep = chain_module(12, 40);
        let tm = TimingModel::default();
        let ts = estimate(&shallow.0, &placed(&shallow, 12), &dev, &tm);
        let td = estimate(&deep.0, &placed(&deep, 16), &dev, &tm);
        assert!(td.longest_path_ns > ts.longest_path_ns);
        assert!(td.logic_ns > ts.logic_ns);
    }

    #[test]
    fn fmax_is_inverse_of_path() {
        let dev = Device::xc7z020();
        let m = chain_module(5, 20);
        let t = estimate(&m.0, &placed(&m, 10), &dev, &TimingModel::default());
        assert!((t.fmax_mhz * t.longest_path_ns - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn clock_column_penalty_applies() {
        let dev = Device::xc7z020();
        // Find a clock column and straddle it.
        let clock_x = (0..dev.width())
            .find(|&x| dev.column(x).kind == tms_device::ColumnKind::Clock)
            .expect("xc7z020 model has clock columns");
        let m = chain_module(4, 30);
        let x0 = clock_x.saturating_sub(5);
        let region = Rect::new(x0, 0, 11, 20);
        let p = place_in_region(
            &m.0,
            &m.1,
            &dev,
            &region,
            &PlacementModel::deterministic(),
            0,
        )
        .unwrap();
        let with = estimate(&m.0, &p, &dev, &TimingModel::default());
        assert!(with.penalty_ns >= 0.30 - 1e-9);
        // A same-size region away from clock columns has no penalty.
        let p2 = placed(&m, 15);
        let without = estimate(&m.0, &p2, &dev, &TimingModel::default());
        assert_eq!(without.penalty_ns, 0.0);
    }

    #[test]
    fn region_crossing_penalty_applies() {
        let dev = Device::xc7z020();
        let m = chain_module(4, 30);
        let tall = Rect::new(0, 0, 8, 120); // spans 3 clock regions
        let p =
            place_in_region(&m.0, &m.1, &dev, &tall, &PlacementModel::deterministic(), 0).unwrap();
        let t = estimate(&m.0, &p, &dev, &TimingModel::default());
        assert!(t.penalty_ns >= 2.0 * 0.20 - 1e-9);
    }

    #[test]
    fn zero_depth_module_still_reports_positive_path() {
        let mut b = NetlistBuilder::new("ff_only");
        let cs = ControlSet::basic();
        for _ in 0..16 {
            b.ff(cs);
        }
        let stats = b.finish().stats();
        let packing = pack(&stats);
        let dev = Device::xc7z020();
        let p = place_in_region(
            &stats,
            &packing,
            &dev,
            &Rect::new(0, 0, 3, 3),
            &PlacementModel::deterministic(),
            0,
        )
        .unwrap();
        let t = estimate(&stats, &p, &dev, &TimingModel::default());
        assert!(t.longest_path_ns > 0.5);
    }
}
