//! The quick placement of Figure 1: estimate + shape report.

use tms_device::SliceCapacity;
use tms_netlist::NetlistStats;
use tms_synth::{optimistic_slice_estimate, PackingReport};

/// The shape report RapidWright derives from synthesis plus a fast
/// placement, consumed by the PBlock generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeReport {
    /// Optimistic slice estimate (the quantity the CF multiplies).
    pub est_slices: u32,
    /// Target aspect ratio (width / height) of the PBlock.
    pub aspect: f64,
    /// Minimum PBlock height in slices, set by the tallest carry chain.
    /// Ignoring this is the failure mode Section V-C warns about.
    pub min_height: u32,
    /// Hard resource demand the PBlock must cover regardless of CF.
    pub demand: SliceCapacity,
    /// Estimated bounding-box area of the quick placement, in slices.
    /// This is the paper's "placement feature" (Classical* feature set).
    pub shape_area: u32,
}

impl ShapeReport {
    /// The width/height the estimate corresponds to at CF = 1.
    pub fn nominal_dims(&self) -> (u32, u32) {
        let h = ((self.est_slices as f64 / self.aspect).sqrt().ceil() as u32)
            .max(self.min_height)
            .max(1);
        let w = (self.est_slices as f64 / h as f64).ceil() as u32;
        (w.max(1), h)
    }
}

/// Run the quick placement: derive the estimate and shape constraints.
///
/// The aspect ratio is held constant (Section VI-C: "the constant PBlocks
/// aspect ratio (W/L in Figure 1)"); the fast placement's bounding box is
/// modelled as the estimate inflated by the detached-cell scatter a real
/// quick placement exhibits.
pub fn quick_place(stats: &NetlistStats, packing: &PackingReport) -> ShapeReport {
    let est_slices = optimistic_slice_estimate(stats);
    // Hard demand: M slices and hard blocks are not negotiable; the slice
    // *count* is what the correction factor scales.
    let demand = SliceCapacity {
        l_slices: 0,
        m_slices: packing.m_slices,
        bram36: stats.counts.bram36,
        dsp48: stats.counts.dsp48,
        clock_columns: 0,
    };
    // Quick placements scatter ~15% beyond the packed area.
    let shape_area = ((packing.required_slices as f64) * 1.15).ceil() as u32;
    ShapeReport {
        est_slices,
        aspect: 1.0,
        min_height: packing.tallest_chain(),
        demand,
        shape_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_synth::pack;

    fn shape_of(build: impl FnOnce(&mut NetlistBuilder)) -> ShapeReport {
        let mut b = NetlistBuilder::new("q");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        quick_place(&stats, &packing)
    }

    #[test]
    fn estimate_matches_optimistic_packing() {
        let s = shape_of(|b| {
            for _ in 0..100 {
                b.lut(6);
            }
        });
        assert_eq!(s.est_slices, 25);
        assert_eq!(s.min_height, 0);
        assert!(s.shape_area >= 25);
    }

    #[test]
    fn carry_chain_sets_min_height() {
        let s = shape_of(|b| {
            b.carry_chain(40); // 10 slices tall
        });
        assert_eq!(s.min_height, 10);
        let (w, h) = s.nominal_dims();
        assert!(h >= 10);
        assert!(w >= 1);
    }

    #[test]
    fn nominal_dims_cover_estimate() {
        let s = shape_of(|b| {
            let cs = ControlSet::basic();
            for _ in 0..333 {
                b.lut(5);
            }
            for _ in 0..100 {
                b.ff(cs);
            }
        });
        let (w, h) = s.nominal_dims();
        assert!(w * h >= s.est_slices, "{w}x{h} < {}", s.est_slices);
    }

    #[test]
    fn hard_demand_passes_through() {
        let s = shape_of(|b| {
            for _ in 0..6 {
                b.bram();
            }
            b.dsp();
            for _ in 0..8 {
                b.lutram(ControlSet::basic());
            }
        });
        assert_eq!(s.demand.bram36, 6);
        assert_eq!(s.demand.dsp48, 1);
        assert_eq!(s.demand.m_slices, 2);
    }

    #[test]
    fn empty_module_has_degenerate_dims() {
        let s = shape_of(|_| {});
        assert_eq!(s.est_slices, 0);
        let (w, h) = s.nominal_dims();
        assert_eq!((w, h), (1, 1));
    }
}
