//! # tms-place — quick placement, detailed intra-PBlock placement, flat baseline
//!
//! Three placement engines sit in this crate:
//!
//! * [`quick_place`] — the fast placement RapidWright runs right after
//!   synthesis (Figure 1). It yields a [`ShapeReport`]: the optimistic slice
//!   estimate, the target aspect ratio, and the carry-chain height floor the
//!   PBlock generator must respect.
//! * [`place_in_region`] — the detailed place-and-route feasibility check
//!   inside a candidate PBlock rectangle. This is where the paper's minimal
//!   correction factor *emerges*: the placer fails on missing resources, on
//!   carry chains taller than the region, and on routing congestion computed
//!   from fanout, density and utilisation (Section V). On success it reports
//!   utilisation, the number of actually occupied slices (which shrinks as
//!   the PBlock tightens — Table I), and a placement-irregularity measure
//!   (Figure 3).
//! * [`flat_place`] — the monolithic "AMD EDA"-style baseline that places a
//!   whole multi-module design without PBlocks (Table I, Figure 5a).
//!
//! The congestion physics is collected in [`PlacementModel`], with
//! calibrated defaults; everything is deterministic given the model and a
//! seed.
//!
//! ```
//! use tms_device::{Device, Rect};
//! use tms_netlist::{NetlistBuilder, ControlSet};
//! use tms_place::{quick_place, place_in_region, PlacementModel};
//! use tms_synth::pack;
//!
//! let mut b = NetlistBuilder::new("m");
//! for _ in 0..64 { b.lut(4); }
//! let nl = b.finish();
//! let stats = nl.stats();
//! let packing = pack(&stats);
//! let shape = quick_place(&stats, &packing);
//! assert!(shape.est_slices >= 16);
//!
//! let dev = Device::xc7z020();
//! // A generous region: placement must succeed.
//! let region = Rect::new(0, 0, 10, 10);
//! let model = PlacementModel::default();
//! assert!(place_in_region(&stats, &packing, &dev, &region, &model, 1).is_ok());
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod detail;
pub mod flat;
pub mod model;
pub mod quick;

pub use context::PlaceContext;
pub use detail::{place_in_region, PlaceError, Placement};
pub use flat::{flat_place, FlatModule, FlatPlacement};
pub use model::PlacementModel;
pub use quick::{quick_place, ShapeReport};
