//! Reusable per-module placement context for the CF-search hot path.
//!
//! [`crate::place_in_region`] recomputes, on every attempt, quantities that
//! depend only on the module: the weighted fanout-histogram sum, the packing
//! density multiplier, the sorted carry-chain list, the seed-keyed jitter.
//! During a correction-factor search the module is fixed and only the
//! candidate region varies, so a [`PlaceContext`] hoists all of that out of
//! the loop and evaluates each region with O(1) arithmetic (plus a memoised
//! carry-chain repack).
//!
//! The context is *bit-exact* with respect to `place_in_region`: the hoisted
//! expressions preserve the original association order of every floating-
//! point product, so `PlaceContext::place` returns the identical
//! `Result<Placement, PlaceError>` for any `(module, model, seed, region)`
//! tuple. The `context_matches_place_in_region` test sweeps both engines
//! over a region grid to pin that equivalence.

use crate::detail::{bucket_fanout, PlaceError, Placement};
use crate::model::PlacementModel;
use tms_device::{CapacityPrefix, Rect, SliceCapacity};
use tms_netlist::NetlistStats;
use tms_synth::PackingReport;

/// Everything about one `(module, model, seed)` tuple that is invariant
/// across placement attempts, plus scratch state reused between attempts.
pub struct PlaceContext {
    demand: SliceCapacity,
    required: u32,
    chains: Vec<u32>,
    model: PlacementModel,
    jitter: f64,
    /// `f64::from(required)`, the `s_occ` of the congestion model.
    s_occ: f64,
    /// `((lambda_f * mean_len) * dens_mult)` — the region-independent part
    /// of the routing-demand product (0 when `required == 0`).
    demand_base: f64,
    /// `(clb_cols, height, fits)` outcomes of previous carry-chain repacks.
    pack_memo: Vec<(u32, u32, bool)>,
    /// Scratch column-fill vector reused across repacks.
    free: Vec<u32>,
}

impl PlaceContext {
    /// Hoist the module-invariant parts of the placement model. One
    /// O(histogram + chains) pass; every later attempt is O(1) plus the
    /// (memoised) carry-chain repack.
    pub fn new(
        stats: &NetlistStats,
        packing: &PackingReport,
        model: &PlacementModel,
        seed: u64,
    ) -> PlaceContext {
        let required = packing.required_slices;
        let mut s_occ = 0.0;
        let mut demand_base = 0.0;
        if required > 0 {
            s_occ = f64::from(required);
            let mut weighted_nets = 0.0;
            for (b, &count) in stats.fanout_histogram.iter().enumerate() {
                if count > 0 {
                    let f = bucket_fanout(b).min(s_occ * 8.0);
                    weighted_nets += f64::from(count) * f.powf(model.fanout_exp);
                }
            }
            let lambda_f = weighted_nets / s_occ;
            let mean_len = model.base_span * s_occ.powf(model.rent_exp);
            let excess = (packing.density - 1.0 / 3.0).max(0.0) * 1.5;
            let dens_mult = 1.0 + model.density_gamma * excess * excess;
            // Same association order as place_in_region's
            // `lambda_f * mean_len * dens_mult * detour(u)`: the detour
            // factor is applied last, per region, in `place`.
            demand_base = lambda_f * mean_len * dens_mult;
        }
        PlaceContext {
            demand: packing.demand,
            required,
            chains: packing.chain_slices.clone(),
            model: *model,
            jitter: model.jitter(seed),
            s_occ,
            demand_base,
            pack_memo: Vec::new(),
            free: Vec::new(),
        }
    }

    /// The structural (congestion-free) part of the placement check:
    /// bounds, resource coverage, carry-chain height and packing — in the
    /// exact order `place_in_region` evaluates them. Returns the region
    /// capacity on success so `place` can finish without re-querying.
    pub fn screen(
        &mut self,
        prefix: &CapacityPrefix,
        region: &Rect,
    ) -> Result<SliceCapacity, PlaceError> {
        if !prefix.bounds().contains(region) {
            return Err(PlaceError::RegionOffDevice);
        }
        let capacity = prefix.capacity_in(region);
        if !capacity.covers(&self.demand) {
            return Err(PlaceError::InsufficientResources {
                need: self.demand,
                have: capacity,
            });
        }
        if let Some(&tallest) = self.chains.first() {
            if tallest > region.h {
                return Err(PlaceError::ChainTooTall {
                    chain: tallest,
                    height: region.h,
                });
            }
            let clb_cols = prefix.clb_columns_in(region.x, region.right());
            if !self.chains_fit(clb_cols, region.h) {
                return Err(PlaceError::ChainPackingFailed);
            }
        }
        Ok(capacity)
    }

    /// Whether the module's carry chains first-fit (decreasing) into
    /// `cols` CLB columns of `height` free slices each.
    ///
    /// Memoised with two deductions that are *provably identical* to
    /// re-running the first-fit pass:
    ///
    /// * success with `c ≤ cols` columns at the same height implies
    ///   success — appended empty columns are never reached, because every
    ///   chain already fit in the first `c`;
    /// * failure with `c ≥ cols` columns at the same height implies
    ///   failure — the `cols`-column run is identical to the `c`-column
    ///   run restricted to its prefix until the first chain the larger run
    ///   put beyond column `cols`, at which point the smaller run has no
    ///   slot either.
    ///
    /// No deduction is made across *heights*: first-fit-decreasing is not
    /// monotone in bin capacity (growing every column can reorder which
    /// column each chain lands in), so height reuse could diverge from
    /// `place_in_region`. A proptest pins the memoised answer against a
    /// fresh first-fit pass.
    fn chains_fit(&mut self, cols: u32, height: u32) -> bool {
        for &(c, h, fits) in &self.pack_memo {
            if h == height && ((fits && c <= cols) || (!fits && c >= cols)) {
                return fits;
            }
        }
        self.free.clear();
        self.free.resize(cols as usize, height);
        let mut fits = true;
        for &chain in &self.chains {
            match self.free.iter_mut().find(|f| **f >= chain) {
                Some(slot) => *slot -= chain,
                None => {
                    fits = false;
                    break;
                }
            }
        }
        self.pack_memo.push((cols, height, fits));
        fits
    }

    /// Attempt the full placement of the module into `region` — identical
    /// outcome to [`crate::place_in_region`] for the `(stats, packing,
    /// model, seed)` this context was built from, at O(1) per call.
    pub fn place(
        &mut self,
        prefix: &CapacityPrefix,
        region: &Rect,
    ) -> Result<Placement, PlaceError> {
        let capacity = self.screen(prefix, region)?;
        let required = self.required;
        if required == 0 {
            return Ok(Placement {
                region: *region,
                capacity,
                required_slices: 0,
                used_slices: 0,
                utilization: 0.0,
                congestion: 0.0,
                irregularity: 0.0,
            });
        }
        let total = f64::from(capacity.slices());
        let u = f64::from(required) / total;
        let demand = self.demand_base * self.model.detour(u);
        let cap_per_occ = self.model.tracks_per_slice / u * self.jitter;
        let congestion = demand / cap_per_occ;
        if congestion > 1.0 {
            return Err(PlaceError::Congested { congestion });
        }
        let used = ((self.s_occ * (1.0 + self.model.spread_alpha * (1.0 - u))).ceil() as u32)
            .min(capacity.slices());
        Ok(Placement {
            region: *region,
            capacity,
            required_slices: required,
            used_slices: used,
            utilization: u,
            congestion,
            irregularity: 1.0 - f64::from(required) / total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detail::place_in_region;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_synth::pack;

    fn module(build: impl FnOnce(&mut NetlistBuilder)) -> (NetlistStats, PackingReport) {
        let mut b = NetlistBuilder::new("m");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        (stats, packing)
    }

    /// Exhaustively compare the context against `place_in_region` over a
    /// region grid that hits every error branch: off-device, short on
    /// slices/M/BRAM/DSP, chain-too-tall, chain-packing, congestion, and
    /// clean successes — with both the noisy and deterministic models.
    #[test]
    fn context_matches_place_in_region() {
        let dev = Device::xc7z020();
        let prefix = CapacityPrefix::build(&dev);
        let modules = [
            module(|b| {
                let cs = ControlSet::basic();
                for _ in 0..600 {
                    b.lut(6);
                }
                for _ in 0..600 {
                    b.ff(cs);
                }
            }),
            module(|b| {
                for _ in 0..12 {
                    b.carry_chain(36);
                }
                for _ in 0..10 {
                    b.lutram(ControlSet::basic());
                }
                b.bram();
                b.dsp();
            }),
            module(|_| {}),
            module(|b| {
                let cs = ControlSet::basic();
                let driver = b.lut(1);
                let mut sinks = Vec::new();
                for _ in 0..2000 {
                    b.lut(6);
                }
                for _ in 0..4000 {
                    sinks.push(b.ff(cs));
                }
                b.connect(driver, &sinks);
            }),
        ];
        for model in [PlacementModel::default(), PlacementModel::deterministic()] {
            for seed in [1u64, 7, 99] {
                for (stats, packing) in &modules {
                    let mut ctx = PlaceContext::new(stats, packing, &model, seed);
                    for x in [0u32, 5, 40, 100, 104] {
                        for y in [0u32, 10, 140, 150] {
                            for w in [1u32, 3, 10, 25, 60] {
                                for h in [1u32, 4, 9, 20, 50, 150] {
                                    let r = Rect::new(x, y, w, h);
                                    let slow =
                                        place_in_region(stats, packing, &dev, &r, &model, seed);
                                    let fast = ctx.place(&prefix, &r);
                                    assert_eq!(fast, slow, "region {r:?} seed {seed}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// The memoised `chains_fit` (cols-monotone deductions + scratch
        /// reuse) answers exactly like a fresh first-fit-decreasing pass,
        /// for any chain set and any interleaving of queries.
        #[test]
        fn memoised_chain_packing_matches_direct_first_fit(
            raw_chains in proptest::collection::vec(1u32..20, 0..12),
            queries in proptest::collection::vec((0u32..12, 1u32..40), 1..40),
        ) {
            let mut chains = raw_chains;
            chains.sort_unstable_by(|a, b| b.cmp(a));
            let mut ctx = PlaceContext {
                demand: SliceCapacity::default(),
                required: 0,
                chains: chains.clone(),
                model: PlacementModel::deterministic(),
                jitter: 1.0,
                s_occ: 0.0,
                demand_base: 0.0,
                pack_memo: Vec::new(),
                free: Vec::new(),
            };
            for (cols, h) in queries {
                let mut free = vec![h; cols as usize];
                let mut direct = true;
                for &chain in &chains {
                    match free.iter_mut().find(|f| **f >= chain) {
                        Some(slot) => *slot -= chain,
                        None => {
                            direct = false;
                            break;
                        }
                    }
                }
                proptest::prop_assert_eq!(ctx.chains_fit(cols, h), direct, "cols {} h {}", cols, h);
            }
        }
    }

    #[test]
    fn screen_failures_carry_the_same_error_as_place() {
        let dev = Device::xc7z020();
        let prefix = CapacityPrefix::build(&dev);
        let (stats, packing) = module(|b| {
            b.carry_chain(40); // 10 slices tall
            for _ in 0..200 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let mut ctx = PlaceContext::new(&stats, &packing, &model, 3);
        let short = Rect::new(0, 0, 12, 8);
        let err = ctx.screen(&prefix, &short).unwrap_err();
        assert_eq!(
            err,
            place_in_region(&stats, &packing, &dev, &short, &model, 3).unwrap_err()
        );
        // A structural pass means the full attempt can only fail on
        // congestion.
        let ok = Rect::new(0, 0, 12, 12);
        assert!(ctx.screen(&prefix, &ok).is_ok());
    }
}
