//! Detailed intra-PBlock placement: the feasibility oracle whose failures
//! define the minimal correction factor.

use crate::model::{name_hash, PlacementModel};
use core::fmt;
use tms_device::{Device, Rect, SliceCapacity};
use tms_netlist::NetlistStats;
use tms_synth::PackingReport;

/// Why a module could not be placed and routed inside a region.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// The region reaches outside the device fabric.
    RegionOffDevice,
    /// Some resource class is short: `need` versus `have`.
    InsufficientResources {
        /// Packed demand.
        need: SliceCapacity,
        /// Region capacity.
        have: SliceCapacity,
    },
    /// A carry chain is taller than the region.
    ChainTooTall {
        /// Chain height in slices.
        chain: u32,
        /// Region height in rows.
        height: u32,
    },
    /// Carry chains fit individually but could not be packed into the
    /// region's CLB columns.
    ChainPackingFailed,
    /// Routing demand exceeded capacity.
    Congested {
        /// Demand / capacity ratio (> 1).
        congestion: f64,
    },
}

impl PlaceError {
    /// Stable failure-kind label for telemetry. Resource shortfalls are
    /// split by the scarcest class: BRAM/DSP column shortages and M-slice
    /// shortages are distinct effects in the paper's analysis (a PBlock
    /// can have plenty of plain slices yet still miss a BRAM column).
    pub fn kind_label(&self) -> &'static str {
        match self {
            PlaceError::RegionOffDevice => "off-device",
            PlaceError::InsufficientResources { need, have } => {
                if need.bram36 > have.bram36 {
                    "bram-column"
                } else if need.dsp48 > have.dsp48 {
                    "dsp-column"
                } else if need.m_slices > have.m_slices {
                    "m-slice"
                } else {
                    "slices"
                }
            }
            PlaceError::ChainTooTall { .. } | PlaceError::ChainPackingFailed => "carry-chain",
            PlaceError::Congested { .. } => "congestion",
        }
    }

    /// The `place.fail.*` counter key this failure increments.
    pub fn counter_key(&self) -> &'static str {
        match self.kind_label() {
            "off-device" => "place.fail.off-device",
            "bram-column" => "place.fail.bram-column",
            "dsp-column" => "place.fail.dsp-column",
            "m-slice" => "place.fail.m-slice",
            "slices" => "place.fail.slices",
            "carry-chain" => "place.fail.carry-chain",
            "congestion" => "place.fail.congestion",
            _ => unreachable!("kind_label is exhaustive"),
        }
    }
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::RegionOffDevice => write!(f, "region outside device"),
            PlaceError::InsufficientResources { need, have } => write!(
                f,
                "insufficient resources: need {} slices ({} M, {} BRAM, {} DSP), have {} ({} M, {} BRAM, {} DSP)",
                need.slices(), need.m_slices, need.bram36, need.dsp48,
                have.slices(), have.m_slices, have.bram36, have.dsp48
            ),
            PlaceError::ChainTooTall { chain, height } => {
                write!(f, "carry chain of {chain} slices exceeds region height {height}")
            }
            PlaceError::ChainPackingFailed => write!(f, "carry chains do not pack into columns"),
            PlaceError::Congested { congestion } => {
                write!(f, "routing congestion {congestion:.2} > 1")
            }
        }
    }
}

/// A successful detailed placement inside a region.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Placement {
    /// The region placed into.
    pub region: Rect,
    /// Capacity of the region.
    pub capacity: SliceCapacity,
    /// Packed slice demand of the module.
    pub required_slices: u32,
    /// Slices actually occupied: the placer spreads into loose regions
    /// (Table I: looser PBlocks use *more* slices).
    pub used_slices: u32,
    /// Utilisation = required / capacity.
    pub utilization: f64,
    /// Routing demand / capacity at the final placement (≤ 1).
    pub congestion: f64,
    /// Placement irregularity in [0, 1): the dead-area fraction of the
    /// region, i.e. how non-rectangular the occupied logic is (Figure 3).
    pub irregularity: f64,
}

/// Geometric-mid representative fanout of histogram bucket `b`
/// (`[2^b, 2^(b+1))`).
#[inline]
pub(crate) fn bucket_fanout(b: usize) -> f64 {
    (1u64 << b) as f64 * 1.5
}

/// Attempt a detailed placement of the packed module into `region`.
///
/// `seed` keys the reproducible placer jitter; mix the module name in via
/// [`module_key`] so distinct modules see independent noise.
pub fn place_in_region(
    stats: &NetlistStats,
    packing: &PackingReport,
    device: &Device,
    region: &Rect,
    model: &PlacementModel,
    seed: u64,
) -> Result<Placement, PlaceError> {
    let bounds = device.bounds();
    if !bounds.contains(region) {
        return Err(PlaceError::RegionOffDevice);
    }
    let capacity = device.capacity_in(region);
    if !capacity.covers(&packing.demand) {
        return Err(PlaceError::InsufficientResources {
            need: packing.demand,
            have: capacity,
        });
    }

    // Carry chains: first-fit decreasing into the region's CLB columns,
    // each offering `region.h` vertically contiguous slices.
    if let Some(&tallest) = packing.chain_slices.first() {
        if tallest > region.h {
            return Err(PlaceError::ChainTooTall {
                chain: tallest,
                height: region.h,
            });
        }
        let clb_cols = (region.x..region.right())
            .filter(|&x| device.column(x).kind.is_clb())
            .count();
        let mut free = vec![region.h; clb_cols];
        for &chain in &packing.chain_slices {
            match free.iter_mut().find(|f| **f >= chain) {
                Some(slot) => *slot -= chain,
                None => return Err(PlaceError::ChainPackingFailed),
            }
        }
    }

    let required = packing.required_slices;
    if required == 0 {
        return Ok(Placement {
            region: *region,
            capacity,
            required_slices: 0,
            used_slices: 0,
            utilization: 0.0,
            congestion: 0.0,
            irregularity: 0.0,
        });
    }
    let total = f64::from(capacity.slices());
    let u = f64::from(required) / total;

    // Routing model: per-occupied-slice wire demand versus track capacity.
    let s_occ = f64::from(required);
    let mut weighted_nets = 0.0;
    for (b, &count) in stats.fanout_histogram.iter().enumerate() {
        if count > 0 {
            let f = bucket_fanout(b).min(s_occ * 8.0);
            weighted_nets += f64::from(count) * f.powf(model.fanout_exp);
        }
    }
    let lambda_f = weighted_nets / s_occ;
    let mean_len = model.base_span * s_occ.powf(model.rent_exp);
    // Density congestion kicks in superlinearly: balanced LUT/FF/carry
    // demand (density → 1) hurts overlay packing much more than a mild
    // imbalance (Section V-E).
    let excess = (packing.density - 1.0 / 3.0).max(0.0) * 1.5;
    let dens_mult = 1.0 + model.density_gamma * excess * excess;
    let demand = lambda_f * mean_len * dens_mult * model.detour(u);
    let cap_per_occ = model.tracks_per_slice / u * model.jitter(seed);
    let congestion = demand / cap_per_occ;
    if congestion > 1.0 {
        return Err(PlaceError::Congested { congestion });
    }

    let used =
        ((s_occ * (1.0 + model.spread_alpha * (1.0 - u))).ceil() as u32).min(capacity.slices());
    Ok(Placement {
        region: *region,
        capacity,
        required_slices: required,
        used_slices: used,
        utilization: u,
        congestion,
        irregularity: 1.0 - f64::from(required) / total,
    })
}

/// Mix a module's name into a seed so per-module jitter is independent.
pub fn module_key(name: &str, seed: u64) -> u64 {
    name_hash(name) ^ seed.rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::ColumnKind;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_synth::pack;

    fn module(build: impl FnOnce(&mut NetlistBuilder)) -> (NetlistStats, PackingReport) {
        let mut b = NetlistBuilder::new("m");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        (stats, packing)
    }

    fn try_place(
        (stats, packing): &(NetlistStats, PackingReport),
        region: Rect,
    ) -> Result<Placement, PlaceError> {
        let dev = Device::xc7z020();
        place_in_region(
            stats,
            packing,
            &dev,
            &region,
            &PlacementModel::deterministic(),
            7,
        )
    }

    #[test]
    fn region_off_device_is_rejected() {
        let m = module(|b| {
            b.lut(4);
        });
        let dev = Device::xc7z020();
        let r = Rect::new(dev.width() - 1, 0, 5, 5);
        let err = try_place(&m, r).unwrap_err();
        assert_eq!(err, PlaceError::RegionOffDevice);
    }

    #[test]
    fn insufficient_slices_reported() {
        let m = module(|b| {
            for _ in 0..4000 {
                b.lut(6);
            }
        });
        let err = try_place(&m, Rect::new(0, 0, 4, 4)).unwrap_err();
        assert!(
            matches!(err, PlaceError::InsufficientResources { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_m_slices_reported() {
        let m = module(|b| {
            for _ in 0..8 {
                b.lutram(ControlSet::basic());
            }
        });
        let dev = Device::xc7z020();
        // Find a window of two pure-L columns.
        let x = (0..dev.width() - 2)
            .find(|&x| {
                dev.column(x).kind == ColumnKind::ClbL && dev.column(x + 1).kind == ColumnKind::ClbL
            })
            .unwrap();
        let err = try_place(&m, Rect::new(x, 0, 2, 10)).unwrap_err();
        assert!(
            matches!(err, PlaceError::InsufficientResources { .. }),
            "{err}"
        );
    }

    #[test]
    fn chain_taller_than_region_fails() {
        let m = module(|b| {
            b.carry_chain(40); // 10 slices tall
        });
        let err = try_place(&m, Rect::new(0, 0, 8, 8)).unwrap_err();
        assert_eq!(
            err,
            PlaceError::ChainTooTall {
                chain: 10,
                height: 8
            }
        );
        // A region tall enough succeeds.
        assert!(try_place(&m, Rect::new(0, 0, 4, 12)).is_ok());
    }

    #[test]
    fn many_chains_can_exhaust_columns() {
        let m = module(|b| {
            for _ in 0..12 {
                b.carry_chain(36); // 9 slices each
            }
        });
        // Two CLB columns of height 10 hold at most two 9-slice chains.
        let err = try_place(&m, Rect::new(0, 0, 2, 10)).unwrap_err();
        assert!(
            matches!(
                err,
                PlaceError::ChainPackingFailed | PlaceError::InsufficientResources { .. }
            ),
            "{err}"
        );
        // A wide region packs them one per column.
        assert!(try_place(&m, Rect::new(0, 0, 16, 12)).is_ok());
    }

    #[test]
    fn congestion_appears_when_region_tightens() {
        let m = module(|b| {
            let cs = ControlSet::basic();
            let driver = b.lut(1);
            let mut sinks = Vec::new();
            for _ in 0..2000 {
                b.lut(6);
            }
            for _ in 0..4000 {
                sinks.push(b.ff(cs));
            }
            b.connect(driver, &sinks);
            // Dense local wiring.
            for i in 0..2000u32 {
                let a = tms_netlist::CellId(1 + i);
                let z = tms_netlist::CellId(1 + (i * 7 + 3) % 2000);
                b.connect(a, &[z]);
            }
        });
        let required = m.1.required_slices;
        // Exactly-sized region: utilisation ≈ 1 so detour explodes.
        let side = (required as f64).sqrt().ceil() as u32;
        let tight = try_place(&m, Rect::new(0, 0, side, side + 1));
        let loose = try_place(&m, Rect::new(0, 0, side * 2, side * 2));
        assert!(loose.is_ok(), "loose failed: {loose:?}");
        if let Err(e) = tight {
            assert!(
                matches!(
                    e,
                    PlaceError::Congested { .. } | PlaceError::InsufficientResources { .. }
                ),
                "{e}"
            );
        } else {
            // If even the tight region routed, congestion must be higher.
            assert!(tight.unwrap().congestion > loose.unwrap().congestion);
        }
    }

    #[test]
    fn looser_region_uses_more_slices() {
        // The Table-I effect: CF 1.5 placement occupies more slices than CF 1.
        let m = module(|b| {
            let cs = ControlSet::basic();
            for _ in 0..800 {
                b.lut(6);
            }
            for _ in 0..800 {
                b.ff(cs);
            }
        });
        let tight = try_place(&m, Rect::new(0, 0, 15, 15)).unwrap();
        let loose = try_place(&m, Rect::new(0, 0, 22, 22)).unwrap();
        assert!(loose.used_slices > tight.used_slices);
        assert!(loose.irregularity > tight.irregularity);
        assert!(loose.utilization < tight.utilization);
    }

    #[test]
    fn empty_module_places_trivially() {
        let m = module(|_| {});
        let p = try_place(&m, Rect::new(0, 0, 1, 1)).unwrap();
        assert_eq!(p.used_slices, 0);
        assert_eq!(p.congestion, 0.0);
    }

    #[test]
    fn feasibility_is_monotone_in_region_width() {
        let m = module(|b| {
            let cs = ControlSet::new(0, 1, 0);
            for _ in 0..600 {
                b.lut(5);
            }
            for _ in 0..900 {
                b.ff(cs);
            }
            b.carry_chain(24);
        });
        let dev = Device::xc7z020();
        let model = PlacementModel::deterministic();
        let mut feasible_seen = false;
        for w in 4..40 {
            let ok = place_in_region(&m.0, &m.1, &dev, &Rect::new(0, 0, w, 20), &model, 3).is_ok();
            if feasible_seen {
                assert!(ok, "feasibility regressed at width {w}");
            }
            feasible_seen |= ok;
        }
        assert!(feasible_seen);
    }

    #[test]
    fn module_key_mixes_name_and_seed() {
        assert_ne!(module_key("a", 1), module_key("b", 1));
        assert_ne!(module_key("a", 1), module_key("a", 2));
        assert_eq!(module_key("a", 1), module_key("a", 1));
    }

    #[test]
    fn failure_kinds_classify_the_scarce_resource() {
        let mut need = SliceCapacity::default();
        let have = SliceCapacity::default();
        need.bram36 = have.bram36 + 1;
        let bram = PlaceError::InsufficientResources { need, have };
        assert_eq!(bram.kind_label(), "bram-column");
        assert_eq!(bram.counter_key(), "place.fail.bram-column");

        let need = SliceCapacity {
            m_slices: 5,
            ..SliceCapacity::default()
        };
        let m = PlaceError::InsufficientResources {
            need,
            have: SliceCapacity::default(),
        };
        assert_eq!(m.kind_label(), "m-slice");

        assert_eq!(PlaceError::ChainPackingFailed.kind_label(), "carry-chain");
        assert_eq!(
            PlaceError::ChainTooTall {
                chain: 9,
                height: 4
            }
            .counter_key(),
            "place.fail.carry-chain"
        );
        assert_eq!(
            PlaceError::Congested { congestion: 1.3 }.counter_key(),
            "place.fail.congestion"
        );
        assert_eq!(PlaceError::RegionOffDevice.kind_label(), "off-device");
    }
}
