//! The congestion/routability physics shared by the placement engines.

/// Tunable constants of the placement model.
///
/// The defaults are calibrated so that, over the standard data-set sweep,
/// the minimal feasible correction factor spans ≈0.7 .. 1.7 with the bulk
/// between 0.9 and 1.3 — the range reported in the paper (Figures 4 and 8).
/// All randomness ("placer nondeterminism") enters through a single
/// seed-keyed jitter on routing capacity, so a given `(module, seed)` pair
/// is perfectly reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementModel {
    /// Routing tracks contributed per slice of PBlock area.
    pub tracks_per_slice: f64,
    /// Wire demand grows as `fanout^fanout_exp` per net.
    pub fanout_exp: f64,
    /// Detour blow-up `1 / (1 - u)^detour_exp` as utilisation u → 1.
    pub detour_exp: f64,
    /// Base length scale of a net spanning one slice.
    pub base_span: f64,
    /// Rent-style growth of mean net length with occupied area:
    /// `len ≈ base_span · slices^rent_exp`.
    pub rent_exp: f64,
    /// Extra congestion per unit of packing density (Section V-E).
    pub density_gamma: f64,
    /// Relative amplitude of the capacity jitter emulating placer noise.
    pub noise: f64,
    /// How far the placer spreads into available area when the region is
    /// loose: occupied ≈ required · (1 + spread_alpha · (1 − u)).
    pub spread_alpha: f64,
}

impl Default for PlacementModel {
    fn default() -> Self {
        PlacementModel {
            tracks_per_slice: 40.0,
            fanout_exp: 0.62,
            detour_exp: 0.35,
            base_span: 0.75,
            rent_exp: 0.12,
            density_gamma: 0.9,
            noise: 0.04,
            spread_alpha: 0.35,
        }
    }
}

impl PlacementModel {
    /// A noise-free variant for tests that need exact reproducibility
    /// across seeds.
    pub fn deterministic() -> Self {
        PlacementModel {
            noise: 0.0,
            ..PlacementModel::default()
        }
    }

    /// Detour factor at utilisation `u` (clamped just below 1).
    pub fn detour(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 0.995);
        (1.0 - u).powf(-self.detour_exp)
    }

    /// Deterministic capacity jitter in `[1 - noise, 1 + noise]`, keyed by
    /// an arbitrary 64-bit identity (module-name hash mixed with the seed).
    pub fn jitter(&self, key: u64) -> f64 {
        // SplitMix64 finaliser: decorrelates consecutive keys.
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.noise * (2.0 * unit - 1.0)
    }
}

/// Stable 64-bit hash of a module name (FNV-1a), used to key jitter.
pub(crate) fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detour_is_monotone_and_bounded() {
        let m = PlacementModel::default();
        let mut last = 0.0;
        for i in 0..100 {
            let u = i as f64 / 100.0;
            let d = m.detour(u);
            assert!(d >= 1.0 - 1e-9);
            assert!(d >= last);
            last = d;
        }
        assert!(m.detour(1.5).is_finite(), "clamped near 1");
    }

    #[test]
    fn jitter_within_amplitude_and_deterministic() {
        let m = PlacementModel::default();
        for key in 0..1000u64 {
            let j = m.jitter(key);
            assert!((1.0 - m.noise..=1.0 + m.noise).contains(&j));
            assert_eq!(j, m.jitter(key));
        }
    }

    #[test]
    fn jitter_decorrelates_consecutive_keys() {
        let m = PlacementModel::default();
        let mean: f64 = (0..10_000).map(|k| m.jitter(k)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn deterministic_model_has_unit_jitter() {
        let m = PlacementModel::deterministic();
        assert_eq!(m.jitter(42), 1.0);
    }

    #[test]
    fn name_hash_distinguishes_names() {
        assert_ne!(name_hash("mvau_18"), name_hash("mvau_19"));
        assert_eq!(name_hash("a"), name_hash("a"));
    }
}
