//! The monolithic "AMD EDA"-style baseline placer.
//!
//! The paper compiles the whole cnvW1A1 with the vendor flow as the
//! reference point of Table I and Figure 5a: the flat tool places the full
//! design (99.98% of the xc7z020's slices) because it is free to interleave
//! the cells of different modules — there are no PBlock walls to waste area
//! against. The cost is that every instance is implemented separately
//! (Table I's footnote: "AMD EDA implements each of them"), with slightly
//! different slice counts per instance, and nothing is reusable.

use crate::model::{name_hash, PlacementModel};
use tms_device::{Device, SliceCapacity};
use tms_synth::PackingReport;

/// Flat-compile packing overhead: a flat placer under full-device pressure
/// packs close to, but not exactly at, the theoretical minimum.
const FLAT_OVERHEAD: f64 = 1.06;

/// One module of the flat design, with its instance count.
#[derive(Debug, Clone)]
pub struct FlatModule {
    /// Module name.
    pub name: String,
    /// Packed demand of one instance.
    pub packing: PackingReport,
    /// Number of instances in the design.
    pub instances: u32,
}

/// Result of the flat baseline compile.
#[derive(Debug, Clone)]
pub struct FlatPlacement {
    /// Total slices occupied across all instances.
    pub total_used: u32,
    /// Device slice capacity.
    pub device_slices: u32,
    /// `total_used / device_slices`.
    pub utilization: f64,
    /// Whether every instance was placed.
    pub fully_placed: bool,
    /// Slices used by each placed instance: `(module name, instance index,
    /// slices)`. Distinct instances of one module differ slightly — each is
    /// implemented separately by the flat tool.
    pub per_instance_used: Vec<(String, u32, u32)>,
}

impl FlatPlacement {
    /// Used-slice counts of all instances of `name`.
    pub fn instances_of(&self, name: &str) -> Vec<u32> {
        self.per_instance_used
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|&(_, _, s)| s)
            .collect()
    }
}

/// Run the flat baseline placement of a multi-module design.
///
/// Succeeds (`fully_placed`) when the summed demand — including the
/// per-instance packing overhead — fits the device's slice, M-slice, BRAM
/// and DSP capacities. Per-instance used-slice counts carry a small
/// deterministic jitter, reproducing the separate implementations the
/// vendor tool produces for identical instances.
pub fn flat_place(
    modules: &[FlatModule],
    device: &Device,
    model: &PlacementModel,
    seed: u64,
) -> FlatPlacement {
    let mut per_instance_used = Vec::new();
    let mut demand = SliceCapacity::default();
    let mut total_used: u64 = 0;
    for m in modules {
        for inst in 0..m.instances {
            let key =
                name_hash(&m.name) ^ u64::from(inst).wrapping_mul(0xA24B_AED4_963E_E407) ^ seed;
            let jitter = model.jitter(key);
            let used =
                (f64::from(m.packing.required_slices) * FLAT_OVERHEAD * jitter).round() as u32;
            let used = used.max(m.packing.required_slices.min(1));
            per_instance_used.push((m.name.clone(), inst, used));
            total_used += u64::from(used);
            // Hard demands accumulate per instance.
            demand = demand.saturating_add(&SliceCapacity {
                l_slices: used.saturating_sub(m.packing.m_slices),
                m_slices: m.packing.m_slices,
                bram36: m.packing.demand.bram36,
                dsp48: m.packing.demand.dsp48,
                clock_columns: 0,
            });
        }
    }
    let cap = device.full_capacity();
    let device_slices = cap.slices();
    let fully_placed = cap.covers(&demand);
    FlatPlacement {
        total_used: total_used.min(u64::from(u32::MAX)) as u32,
        device_slices,
        utilization: total_used as f64 / f64::from(device_slices.max(1)),
        fully_placed,
        per_instance_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_synth::pack;

    fn flat_module(name: &str, luts: u32, instances: u32) -> FlatModule {
        let mut b = NetlistBuilder::new(name);
        let cs = ControlSet::basic();
        for _ in 0..luts {
            b.lut(6);
        }
        for _ in 0..luts {
            b.ff(cs);
        }
        FlatModule {
            name: name.to_string(),
            packing: pack(&b.finish().stats()),
            instances,
        }
    }

    #[test]
    fn small_design_places_fully() {
        let dev = Device::xc7z020();
        let design = vec![flat_module("a", 400, 4), flat_module("b", 100, 2)];
        let r = flat_place(&design, &dev, &PlacementModel::default(), 1);
        assert!(r.fully_placed);
        assert_eq!(r.per_instance_used.len(), 6);
        assert!(r.utilization < 0.2);
    }

    #[test]
    fn oversubscribed_design_fails() {
        let dev = Device::xc7z020();
        // 60k+ slices of demand on a 13k device.
        let design = vec![flat_module("big", 120_000, 2)];
        let r = flat_place(&design, &dev, &PlacementModel::default(), 1);
        assert!(!r.fully_placed);
        assert!(r.utilization > 1.0);
    }

    #[test]
    fn instances_differ_slightly_like_the_vendor_tool() {
        let dev = Device::xc7z020();
        let design = vec![flat_module("mvau", 120, 4)];
        let r = flat_place(&design, &dev, &PlacementModel::default(), 1);
        let sizes = r.instances_of("mvau");
        assert_eq!(sizes.len(), 4);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "instances should differ: {sizes:?}");
        // ... but only within the jitter band.
        assert!(f64::from(max - min) / f64::from(min) < 0.15);
    }

    #[test]
    fn flat_overhead_is_applied() {
        let dev = Device::xc7z020();
        let m = flat_module("x", 1000, 1);
        let required = m.packing.required_slices;
        let r = flat_place(&[m], &dev, &PlacementModel::deterministic(), 0);
        let used = r.per_instance_used[0].2;
        assert!(used > required);
        assert!(f64::from(used) < f64::from(required) * 1.10);
    }

    #[test]
    fn deterministic_given_seed() {
        let dev = Device::xc7z020();
        let design = vec![flat_module("a", 300, 3)];
        let r1 = flat_place(&design, &dev, &PlacementModel::default(), 9);
        let r2 = flat_place(&design, &dev, &PlacementModel::default(), 9);
        assert_eq!(r1.per_instance_used, r2.per_instance_used);
    }
}
