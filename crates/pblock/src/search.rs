//! Correction-factor searches: dataset labelling and the estimator loop.
//!
//! Both searches run on an incremental engine that reuses everything
//! invariant across CF attempts — the device capacity prefix tables, a
//! [`PlaceContext`] holding the module's hoisted congestion constants, the
//! previous attempt's planned rectangle — and prescreens provably-doomed
//! attempts with exact structural checks instead of full placements. The
//! results (CF, attempt counts, per-reason `place.fail.*` counters) are
//! bit-identical to the reference implementation, which is retained as
//! [`min_feasible_cf_reference_observed`] for equivalence tests and the
//! `bench_flow` A/B harness.

use crate::generator::{PBlock, PBlockGenerator, PlanResume};
use tms_device::{Rect, SliceCapacity, DSP48_ROWS, RAMB36_ROWS};
use tms_netlist::NetlistStats;
use tms_obs::{noop, span, Phase, Recorder};
use tms_place::{place_in_region, PlaceContext, PlaceError, Placement, PlacementModel};
use tms_synth::PackingReport;

/// Parameters of the linear minimal-CF search (Section VII: start 0.9,
/// resolution 0.02).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfSearch {
    /// First CF attempted.
    pub start: f64,
    /// Search resolution.
    pub step: f64,
    /// Give up beyond this CF.
    pub max: f64,
}

impl Default for CfSearch {
    fn default() -> Self {
        CfSearch {
            start: 0.9,
            step: 0.02,
            max: 3.0,
        }
    }
}

impl CfSearch {
    /// The wider search the cnvW1A1 analysis uses (Figure 4 shows minimal
    /// CFs below 0.7, so labelling starts lower than 0.9).
    pub fn wide() -> Self {
        CfSearch {
            start: 0.5,
            step: 0.02,
            max: 3.0,
        }
    }
}

/// A successful CF search outcome.
#[derive(Debug, Clone)]
pub struct CfResult {
    /// The minimal feasible correction factor found.
    pub cf: f64,
    /// The PBlock generated at that CF.
    pub pblock: PBlock,
    /// The detailed placement inside it.
    pub placement: Placement,
    /// Place-and-route attempts spent (tool runs).
    pub attempts: u32,
}

/// The incremental per-module search state: one per `(module, model,
/// seed)` tuple, shared by every CF attempt of a search.
struct Engine<'a, 'd> {
    gen: &'a PBlockGenerator<'d>,
    shape: &'a tms_place::ShapeReport,
    ctx: PlaceContext,
    /// The module's hard demand exceeds the whole device: every CF is
    /// provably un-generatable, so attempts are skipped wholesale.
    demand_impossible: bool,
    /// `(target, planned rect)` of the previous attempt. The plan depends
    /// on CF only through the slice target, so consecutive CF steps that
    /// round to the same target reuse the window search.
    last_plan: Option<(u32, Option<Rect>)>,
    /// Height-growth resumption hint for the next (no-smaller) target.
    resume: Option<PlanResume>,
}

impl<'a, 'd> Engine<'a, 'd> {
    fn new(
        gen: &'a PBlockGenerator<'d>,
        stats: &NetlistStats,
        packing: &PackingReport,
        shape: &'a tms_place::ShapeReport,
        model: &PlacementModel,
        seed: u64,
    ) -> Self {
        let full = gen.prefix().capacity_in(&gen.prefix().bounds());
        let demand = shape.demand;
        // Window capacities are monotone in height and width, so a demand
        // component the full device cannot cover is uncoverable by every
        // window the generator could try, at any CF: generation fails.
        // (The degenerate zero-demand unit PBlock is unreachable here
        // because an impossible demand is nonzero.)
        let demand_impossible = demand.m_slices > full.m_slices
            || demand.bram36 > full.bram36
            || demand.dsp48 > full.dsp48;
        Engine {
            gen,
            shape,
            ctx: PlaceContext::new(stats, packing, model, seed),
            demand_impossible,
            last_plan: None,
            resume: None,
        }
    }

    /// One place-and-route attempt at `cf`, with the same counter
    /// bookkeeping as the reference [`attempt_reference`]: a generation
    /// failure counts `pblock.generate.failed`, a placement failure counts
    /// its `place.fail.*` key. Attempts resolved by the structural
    /// prescreen — without running the congestion model or freezing a
    /// PBlock — additionally count `pblock.search.prescreened`.
    fn attempt(&mut self, cf: f64, obs: &dyn Recorder) -> Option<(PBlock, Placement)> {
        if self.demand_impossible {
            obs.count("pblock.generate.failed", 1);
            obs.count("pblock.search.prescreened", 1);
            return None;
        }
        let target = self.gen.slice_target(self.shape, cf);
        let rect = match self.last_plan {
            Some((t, r)) if t == target => r,
            _ => {
                let (r, h_init) =
                    self.gen
                        .plan_target_resumed(self.shape, target, self.resume.as_ref());
                self.resume = Some(PlanResume {
                    target,
                    h_init,
                    result: r,
                    need_clb: r.map_or(0, |rect| target.div_ceil(rect.h)),
                });
                self.last_plan = Some((target, r));
                r
            }
        };
        let Some(rect) = rect else {
            obs.count("pblock.generate.failed", 1);
            return None;
        };
        // Structural prescreen: bounds, coverage, and carry chains checked
        // in placement order against the planned rectangle. A failure here
        // is *exactly* the error the full placement would have returned,
        // so it is counted under the same key — only the wasted work
        // (freeze + congestion model) is skipped.
        if let Err(e) = self.ctx.screen(self.gen.prefix(), &rect) {
            obs.count(e.counter_key(), 1);
            obs.count("pblock.search.prescreened", 1);
            return None;
        }
        // Structurally sound: run the real attempt (the congestion model
        // still decides, so congestion-limited CFs are never skipped).
        let pblock = self.gen.freeze(rect, cf.max(0.0), target);
        match self.ctx.place(self.gen.prefix(), &pblock.rect) {
            Ok(placement) => Some((pblock, placement)),
            Err(e) => {
                obs.count(e.counter_key(), 1);
                None
            }
        }
    }
}

/// The pre-engine PBlock generation path, frozen verbatim as the A/B
/// baseline: the window sweep materialises a full capacity struct per
/// candidate, with no full-width precheck, no threshold reduction, and no
/// reuse across CF attempts. Identical output to
/// [`PBlockGenerator::generate`] — the equivalence tests pin it.
fn generate_reference(
    gen: &PBlockGenerator<'_>,
    shape: &tms_place::ShapeReport,
    cf: f64,
) -> Option<PBlock> {
    let cf = cf.max(0.0);
    let target = gen.slice_target(shape, cf);
    let demand = shape.demand;
    if target == 0 && demand == SliceCapacity::default() {
        return Some(gen.freeze(Rect::new(0, 0, 1, 1), cf, 0));
    }
    let rows = gen.device().rows();
    let mut h = ((f64::from(target) / shape.aspect).sqrt().ceil() as u32).max(1);
    if gen.use_shape_report {
        h = h.max(shape.min_height);
    }
    if demand.bram36 > 0 {
        h = h.max(RAMB36_ROWS);
    }
    if demand.dsp48 > 0 {
        h = h.max(DSP48_ROWS);
    }
    h = h.min(rows);
    loop {
        if let Some((x0, w)) = best_window_reference(gen, target, &demand, h) {
            return Some(gen.freeze(Rect::new(x0, 0, w, h), cf, target));
        }
        if h >= rows {
            return None;
        }
        h = (h + (h / 4).max(1)).min(rows);
    }
}

/// The pre-engine minimal-window sweep: per-candidate capacity queries.
fn best_window_reference(
    gen: &PBlockGenerator<'_>,
    target: u32,
    demand: &SliceCapacity,
    h: u32,
) -> Option<(u32, u32)> {
    let width = gen.device().width();
    let ok = |x0: u32, w: u32| {
        let cap = gen.prefix().capacity_in(&Rect::new(x0, 0, w, h));
        cap.slices() >= target
            && cap.m_slices >= demand.m_slices
            && cap.bram36 >= demand.bram36
            && cap.dsp48 >= demand.dsp48
    };
    let mut best: Option<(u32, u32)> = None;
    let mut w = 1u32;
    for x0 in 0..width {
        if x0 + w > width {
            break;
        }
        while x0 + w <= width && !ok(x0, w) {
            w += 1;
        }
        if x0 + w > width {
            break;
        }
        match best {
            Some((_, bw)) if bw <= w => {}
            _ => best = Some((x0, w)),
        }
        if w > 1 {
            w -= 1;
        }
    }
    best
}

/// One place-and-route attempt at a given CF — the pre-engine reference
/// path: regenerate the PBlock and re-run the full placement from scratch.
/// A placement failure is counted under its `place.fail.*` key on `obs`
/// (a PBlock-generation failure under `pblock.generate.failed`).
#[allow(clippy::too_many_arguments)]
fn attempt_reference(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    cf: f64,
    seed: u64,
    obs: &dyn Recorder,
) -> Result<(PBlock, Placement), Option<PlaceError>> {
    let Some(pblock) = generate_reference(gen, shape, cf) else {
        obs.count("pblock.generate.failed", 1);
        return Err(None);
    };
    match place_in_region(stats, packing, gen.device(), &pblock.rect, model, seed) {
        Ok(p) => Ok((pblock, p)),
        Err(e) => {
            obs.count(e.counter_key(), 1);
            Err(Some(e))
        }
    }
}

/// Find the minimal feasible CF by linear search (the labelling procedure
/// of Section VII). Returns `None` when no CF up to `search.max` places.
#[allow(clippy::too_many_arguments)]
pub fn min_feasible_cf(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    search: &CfSearch,
    seed: u64,
) -> Option<CfResult> {
    min_feasible_cf_observed(gen, stats, packing, shape, model, search, seed, noop(), "")
}

/// [`min_feasible_cf`] with telemetry: wraps the search in a `place`-phase
/// span named after the module, counts `pblock.search.tool_runs` (on
/// success only, so per-module attempt sums reconcile exactly),
/// `pblock.search.{feasible,infeasible,wasted_runs}`, per-attempt
/// `place.fail.*` reasons and `pblock.search.prescreened` skips, and
/// observes `flow.cf.placed`.
///
/// Runs on the incremental engine; the result and every non-prescreen
/// counter are bit-identical to [`min_feasible_cf_reference_observed`].
#[allow(clippy::too_many_arguments)]
pub fn min_feasible_cf_observed(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    search: &CfSearch,
    seed: u64,
    obs: &dyn Recorder,
    name: &str,
) -> Option<CfResult> {
    let mut sp = span(obs, Phase::Place, name);
    let mut engine = Engine::new(gen, stats, packing, shape, model, seed);
    let steps = ((search.max - search.start) / search.step).round() as u32;
    for i in 0..=steps {
        let cf = search.start + f64::from(i) * search.step;
        if let Some((pblock, placement)) = engine.attempt(cf, obs) {
            let attempts = i + 1;
            sp.field("cf", cf);
            sp.field("attempts", f64::from(attempts));
            obs.count("pblock.search.tool_runs", u64::from(attempts));
            obs.count("pblock.search.feasible", 1);
            obs.observe("flow.cf.placed", cf);
            return Some(CfResult {
                cf,
                pblock,
                placement,
                attempts,
            });
        }
    }
    sp.field("attempts", f64::from(steps + 1));
    obs.count("pblock.search.infeasible", 1);
    obs.count("pblock.search.wasted_runs", u64::from(steps + 1));
    None
}

/// The pre-engine linear search, kept verbatim as the correctness baseline:
/// every attempt regenerates its PBlock and runs the full placement. Used
/// by the equivalence regression tests and as the reference side of the
/// `bench_flow` A/B comparison; identical results (and identical counters,
/// minus `pblock.search.prescreened`) to [`min_feasible_cf_observed`].
#[allow(clippy::too_many_arguments)]
pub fn min_feasible_cf_reference_observed(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    search: &CfSearch,
    seed: u64,
    obs: &dyn Recorder,
    name: &str,
) -> Option<CfResult> {
    let mut sp = span(obs, Phase::Place, name);
    let steps = ((search.max - search.start) / search.step).round() as u32;
    for i in 0..=steps {
        let cf = search.start + f64::from(i) * search.step;
        if let Ok((pblock, placement)) =
            attempt_reference(gen, stats, packing, shape, model, cf, seed, obs)
        {
            let attempts = i + 1;
            sp.field("cf", cf);
            sp.field("attempts", f64::from(attempts));
            obs.count("pblock.search.tool_runs", u64::from(attempts));
            obs.count("pblock.search.feasible", 1);
            obs.observe("flow.cf.placed", cf);
            return Some(CfResult {
                cf,
                pblock,
                placement,
                attempts,
            });
        }
    }
    sp.field("attempts", f64::from(steps + 1));
    obs.count("pblock.search.infeasible", 1);
    obs.count("pblock.search.wasted_runs", u64::from(steps + 1));
    None
}

/// Outcome of the estimator-guided search of Section VIII.
#[derive(Debug, Clone)]
pub struct GuidedResult {
    /// The feasible CF settled on.
    pub cf: f64,
    /// The PBlock at that CF.
    pub pblock: PBlock,
    /// The placement inside it.
    pub placement: Placement,
    /// Tool runs spent in total.
    pub attempts: u32,
    /// Whether the predicted CF was feasible on the very first run.
    pub first_try: bool,
}

/// Snap a CF onto the 0.02 labelling grid. The guided search steps by
/// index from the predicted CF and snaps every step, so accumulated float
/// error cannot leak off-grid CFs (`1.7000000000000004`) into spans,
/// cache keys, or estimator labels.
fn snap_to_grid(cf: f64) -> f64 {
    (cf * 50.0).round() / 50.0
}

/// The Section VIII procedure: run the predicted CF; when it underestimates,
/// "increment the correction factor by 0.1 and when a feasible correction
/// factor is found, the last interval is searched with a resolution of
/// 0.02". Returns `None` when nothing up to `max_cf` places.
#[allow(clippy::too_many_arguments)]
pub fn guided_search(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    predicted_cf: f64,
    max_cf: f64,
    seed: u64,
) -> Option<GuidedResult> {
    guided_search_observed(
        gen,
        stats,
        packing,
        shape,
        model,
        predicted_cf,
        max_cf,
        seed,
        noop(),
        "",
    )
}

/// [`guided_search`] with telemetry: a `place`-phase span plus the same
/// counters as [`min_feasible_cf_observed`], `pblock.search.first_try`
/// when the predicted CF places directly, and the requested/placed CF
/// observation pair whose gap is the estimator's bias.
#[allow(clippy::too_many_arguments)]
pub fn guided_search_observed(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    predicted_cf: f64,
    max_cf: f64,
    seed: u64,
    obs: &dyn Recorder,
    name: &str,
) -> Option<GuidedResult> {
    const COARSE: f64 = 0.1;
    const FINE: f64 = 0.02;
    let mut sp = span(obs, Phase::Place, name);
    sp.field("cf_predicted", predicted_cf);
    obs.observe("flow.cf.requested", predicted_cf);
    let finish = |sp: &mut tms_obs::Span<'_>, r: &GuidedResult| {
        sp.field("cf", r.cf);
        sp.field("attempts", f64::from(r.attempts));
        sp.field("first_try", f64::from(u8::from(r.first_try)));
        obs.count("pblock.search.tool_runs", u64::from(r.attempts));
        obs.count("pblock.search.feasible", 1);
        if r.first_try {
            obs.count("pblock.search.first_try", 1);
        }
        obs.observe("flow.cf.placed", r.cf);
    };
    let mut engine = Engine::new(gen, stats, packing, shape, model, seed);
    let mut attempts = 1;
    if let Some((pblock, placement)) = engine.attempt(predicted_cf, obs) {
        let r = GuidedResult {
            cf: predicted_cf,
            pblock,
            placement,
            attempts,
            first_try: true,
        };
        finish(&mut sp, &r);
        return Some(r);
    }
    // Coarse ascent, stepped by index from the prediction and snapped to
    // the fine grid so the interval endpoints are exact grid values.
    let mut lo = predicted_cf;
    let mut found: Option<(f64, PBlock, Placement)> = None;
    for i in 1u32.. {
        let cf = snap_to_grid(predicted_cf + f64::from(i) * COARSE);
        if cf > max_cf + 1e-9 {
            break;
        }
        attempts += 1;
        if let Some((pblock, placement)) = engine.attempt(cf, obs) {
            found = Some((cf, pblock, placement));
            break;
        }
        lo = cf;
    }
    let Some((coarse_cf, mut best_pblock, mut best_placement)) = found else {
        sp.field("attempts", f64::from(attempts));
        obs.count("pblock.search.infeasible", 1);
        obs.count("pblock.search.wasted_runs", u64::from(attempts));
        return None;
    };
    // Fine search of the last interval (lo, coarse_cf), on the same grid.
    let mut best_cf = coarse_cf;
    for k in 1u32.. {
        let fine = snap_to_grid(lo + f64::from(k) * FINE);
        if fine >= coarse_cf - 1e-9 {
            break;
        }
        attempts += 1;
        if let Some((pblock, placement)) = engine.attempt(fine, obs) {
            best_cf = fine;
            best_pblock = pblock;
            best_placement = placement;
            break;
        }
    }
    let r = GuidedResult {
        cf: best_cf,
        pblock: best_pblock,
        placement: best_placement,
        attempts,
        first_try: false,
    };
    finish(&mut sp, &r);
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::quick_place;
    use tms_synth::pack;

    fn prepared(
        build: impl FnOnce(&mut NetlistBuilder),
    ) -> (NetlistStats, PackingReport, tms_place::ShapeReport) {
        let mut b = NetlistBuilder::new("s");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        (stats, packing, shape)
    }

    #[test]
    fn min_cf_found_for_plain_logic() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..600 {
                b.lut(6);
            }
            for _ in 0..600 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let r = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
        )
        .expect("feasible");
        assert!((0.9..=2.0).contains(&r.cf), "cf = {}", r.cf);
        // One attempt per step up to the found CF.
        let expected = ((r.cf - 0.9) / 0.02).round() as u32 + 1;
        assert_eq!(r.attempts, expected);
    }

    #[test]
    fn min_cf_is_minimal() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..900u16 {
                b.ff(ControlSet::new(0, i % 24 + 1, 0));
            }
            for _ in 0..300 {
                b.lut(5);
            }
        });
        let model = PlacementModel::deterministic();
        let search = CfSearch::default();
        let r = min_feasible_cf(&gen, &stats, &packing, &shape, &model, &search, 1).unwrap();
        if r.cf > search.start + 1e-9 {
            // The step below the found CF must fail.
            let below = r.cf - search.step;
            let pb = gen.generate(&shape, below).unwrap();
            assert!(
                place_in_region(&stats, &packing, &dev, &pb.rect, &model, 1).is_err(),
                "cf {below} should be infeasible"
            );
        }
    }

    /// The engine search must reproduce the reference search bit-for-bit:
    /// same CF, same attempt count, same PBlock and placement, and the
    /// same per-reason failure counters — across modules that exercise
    /// every failure class, both models, and several seeds.
    #[test]
    fn engine_matches_reference_bit_for_bit() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let modules = [
            prepared(|b| {
                let cs = ControlSet::basic();
                for _ in 0..600 {
                    b.lut(6);
                }
                for _ in 0..600 {
                    b.ff(cs);
                }
            }),
            prepared(|b| {
                for _ in 0..12 {
                    b.carry_chain(36);
                }
                for _ in 0..30 {
                    b.lutram(ControlSet::basic());
                }
                b.bram();
                b.dsp();
            }),
            prepared(|b| {
                for _ in 0..500 {
                    b.bram(); // hopeless: triggers the bulk prescreen
                }
            }),
            prepared(|_| {}),
        ];
        let fail_kinds = [
            "place.fail.off-device",
            "place.fail.slices",
            "place.fail.m-slice",
            "place.fail.bram-column",
            "place.fail.dsp-column",
            "place.fail.carry-chain",
            "place.fail.congestion",
            "pblock.generate.failed",
            "pblock.search.tool_runs",
            "pblock.search.feasible",
            "pblock.search.infeasible",
            "pblock.search.wasted_runs",
        ];
        for model in [PlacementModel::default(), PlacementModel::deterministic()] {
            for seed in [1u64, 7] {
                for search in [CfSearch::default(), CfSearch::wide()] {
                    for (stats, packing, shape) in &modules {
                        let ref_sink = AggregatingSink::new();
                        let eng_sink = AggregatingSink::new();
                        let reference = min_feasible_cf_reference_observed(
                            &gen, stats, packing, shape, &model, &search, seed, &ref_sink, "m",
                        );
                        let engine = min_feasible_cf_observed(
                            &gen, stats, packing, shape, &model, &search, seed, &eng_sink, "m",
                        );
                        match (&reference, &engine) {
                            (Some(a), Some(b)) => {
                                assert_eq!(a.cf.to_bits(), b.cf.to_bits());
                                assert_eq!(a.attempts, b.attempts);
                                assert_eq!(a.pblock, b.pblock);
                                assert_eq!(a.placement, b.placement);
                            }
                            (None, None) => {}
                            _ => panic!("feasibility diverged: {reference:?} vs {engine:?}"),
                        }
                        for k in fail_kinds {
                            assert_eq!(
                                ref_sink.counter(k),
                                eng_sink.counter(k),
                                "counter {k} diverged (seed {seed})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn guided_first_try_when_prediction_is_generous() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let r = guided_search(&gen, &stats, &packing, &shape, &model, 2.0, 3.0, 1).unwrap();
        assert!(r.first_try);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.cf, 2.0);
    }

    #[test]
    fn guided_recovers_from_underestimate() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..800 {
                b.lut(6);
            }
            for _ in 0..1200 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let min = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
        )
        .unwrap();
        // Predict clearly below the minimum.
        let predicted = (min.cf - 0.3).max(0.1);
        let r = guided_search(&gen, &stats, &packing, &shape, &model, predicted, 3.0, 1).unwrap();
        assert!(!r.first_try);
        assert!(
            r.cf >= min.cf - 0.021,
            "guided cf {} << min {}",
            r.cf,
            min.cf
        );
        assert!(
            r.cf <= min.cf + 0.1 + 1e-9,
            "guided cf {} too loose vs {}",
            r.cf,
            min.cf
        );
        assert!(r.attempts >= 2);
    }

    #[test]
    fn guided_steps_stay_on_the_cf_grid() {
        // The drift regression: with `cf += 0.1` accumulation, an on-grid
        // prediction like 0.5 visited CFs like 1.7000000000000004. Every
        // coarse and fine step past the prediction must now sit exactly on
        // the 0.02 grid.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..2000u16 {
                b.ff(ControlSet::new(0, i % 40 + 1, 0));
            }
            for _ in 0..500 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let r = guided_search(&gen, &stats, &packing, &shape, &model, 0.5, 3.0, 1).unwrap();
        assert!(!r.first_try, "0.5 should underestimate this module");
        let on_grid = (r.cf * 50.0).round() / 50.0;
        assert_eq!(
            r.cf.to_bits(),
            on_grid.to_bits(),
            "settled cf {} is off the 0.02 grid",
            r.cf
        );
    }

    #[test]
    fn impossible_module_returns_none() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..500 {
                b.bram();
            }
        });
        let model = PlacementModel::deterministic();
        assert!(min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1
        )
        .is_none());
        assert!(guided_search(&gen, &stats, &packing, &shape, &model, 1.0, 3.0, 1).is_none());
    }

    #[test]
    fn observed_search_reconciles_counters_with_the_result() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..600 {
                b.lut(6);
            }
            for _ in 0..600 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let sink = AggregatingSink::new();
        let r = min_feasible_cf_observed(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
            &sink,
            "m0",
        )
        .expect("feasible");
        assert_eq!(sink.phase_spans(tms_obs::Phase::Place), 1);
        assert_eq!(
            sink.counter("pblock.search.tool_runs"),
            u64::from(r.attempts)
        );
        assert_eq!(sink.counter("pblock.search.feasible"), 1);
        assert_eq!(sink.counter("pblock.search.infeasible"), 0);
        // Every failed attempt before the minimum left a classified reason.
        let fail_kinds = [
            "place.fail.off-device",
            "place.fail.slices",
            "place.fail.m-slice",
            "place.fail.bram-column",
            "place.fail.dsp-column",
            "place.fail.carry-chain",
            "place.fail.congestion",
            "pblock.generate.failed",
        ];
        let fails: u64 = fail_kinds.iter().map(|k| sink.counter(k)).sum();
        assert_eq!(fails, u64::from(r.attempts) - 1);
        // Prescreened attempts are a subset of the classified failures.
        assert!(sink.counter("pblock.search.prescreened") <= fails);
        let (n, sum) = sink.observation("flow.cf.placed").unwrap();
        assert_eq!(n, 1);
        assert!((sum - r.cf).abs() < 1e-9);
    }

    #[test]
    fn observed_guided_search_counts_first_try_and_cf_gap() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let sink = AggregatingSink::new();
        let r = guided_search_observed(
            &gen, &stats, &packing, &shape, &model, 2.0, 3.0, 1, &sink, "m1",
        )
        .unwrap();
        assert!(r.first_try);
        assert_eq!(sink.counter("pblock.search.first_try"), 1);
        assert_eq!(sink.counter("pblock.search.tool_runs"), 1);
        assert_eq!(sink.observation("flow.cf.requested"), Some((1, 2.0)));
        assert_eq!(sink.observation("flow.cf.placed"), Some((1, 2.0)));
    }

    #[test]
    fn observed_infeasible_search_counts_wasted_runs() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..500 {
                b.bram();
            }
        });
        let model = PlacementModel::deterministic();
        let sink = AggregatingSink::new();
        let search = CfSearch::default();
        assert!(min_feasible_cf_observed(
            &gen, &stats, &packing, &shape, &model, &search, 1, &sink, "hopeless",
        )
        .is_none());
        let steps = ((search.max - search.start) / search.step).round() as u64 + 1;
        assert_eq!(sink.counter("pblock.search.infeasible"), 1);
        assert_eq!(sink.counter("pblock.search.wasted_runs"), steps);
        assert_eq!(sink.counter("pblock.search.tool_runs"), 0);
        // Every wasted run left a classified reason: either the generator
        // could not produce a PBlock at that CF or placement failed.
        assert_eq!(
            sink.counter("place.fail.bram-column") + sink.counter("pblock.generate.failed"),
            steps
        );
        // This module's BRAM demand exceeds the whole device, so every
        // attempt was resolved by the bulk prescreen.
        assert_eq!(sink.counter("pblock.search.prescreened"), steps);
    }

    #[test]
    fn search_attempts_track_distance_from_start() {
        // A module needing a high CF costs proportionally more tool runs
        // when started from a constant low CF — the Section VIII effect.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..2000u16 {
                b.ff(ControlSet::new(0, i % 40 + 1, 0));
            }
            for _ in 0..500 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let from_low = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch {
                start: 0.9,
                step: 0.02,
                max: 3.0,
            },
            1,
        )
        .unwrap();
        let guided = guided_search(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            from_low.cf - 0.05,
            3.0,
            1,
        )
        .unwrap();
        assert!(guided.attempts < from_low.attempts);
    }
}
