//! Correction-factor searches: dataset labelling and the estimator loop.

use crate::generator::{PBlock, PBlockGenerator};
use tms_netlist::NetlistStats;
use tms_obs::{noop, span, Phase, Recorder};
use tms_place::{place_in_region, PlaceError, Placement, PlacementModel};
use tms_synth::PackingReport;

/// Parameters of the linear minimal-CF search (Section VII: start 0.9,
/// resolution 0.02).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfSearch {
    /// First CF attempted.
    pub start: f64,
    /// Search resolution.
    pub step: f64,
    /// Give up beyond this CF.
    pub max: f64,
}

impl Default for CfSearch {
    fn default() -> Self {
        CfSearch {
            start: 0.9,
            step: 0.02,
            max: 3.0,
        }
    }
}

impl CfSearch {
    /// The wider search the cnvW1A1 analysis uses (Figure 4 shows minimal
    /// CFs below 0.7, so labelling starts lower than 0.9).
    pub fn wide() -> Self {
        CfSearch {
            start: 0.5,
            step: 0.02,
            max: 3.0,
        }
    }
}

/// A successful CF search outcome.
#[derive(Debug, Clone)]
pub struct CfResult {
    /// The minimal feasible correction factor found.
    pub cf: f64,
    /// The PBlock generated at that CF.
    pub pblock: PBlock,
    /// The detailed placement inside it.
    pub placement: Placement,
    /// Place-and-route attempts spent (tool runs).
    pub attempts: u32,
}

/// One place-and-route attempt at a given CF. A placement failure is
/// counted under its `place.fail.*` key on `obs` (a PBlock-generation
/// failure under `pblock.generate.failed`) — during a linear search those
/// failures are the interesting signal: they say *why* CFs below the
/// minimum do not place.
#[allow(clippy::too_many_arguments)]
fn attempt(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    cf: f64,
    seed: u64,
    obs: &dyn Recorder,
) -> Result<(PBlock, Placement), Option<PlaceError>> {
    let Some(pblock) = gen.generate(shape, cf) else {
        obs.count("pblock.generate.failed", 1);
        return Err(None);
    };
    match place_in_region(stats, packing, gen.device(), &pblock.rect, model, seed) {
        Ok(p) => Ok((pblock, p)),
        Err(e) => {
            obs.count(e.counter_key(), 1);
            Err(Some(e))
        }
    }
}

/// Find the minimal feasible CF by linear search (the labelling procedure
/// of Section VII). Returns `None` when no CF up to `search.max` places.
#[allow(clippy::too_many_arguments)]
pub fn min_feasible_cf(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    search: &CfSearch,
    seed: u64,
) -> Option<CfResult> {
    min_feasible_cf_observed(gen, stats, packing, shape, model, search, seed, noop(), "")
}

/// [`min_feasible_cf`] with telemetry: wraps the search in a `place`-phase
/// span named after the module, counts `pblock.search.tool_runs` (on
/// success only, so per-module attempt sums reconcile exactly),
/// `pblock.search.{feasible,infeasible,wasted_runs}` and per-attempt
/// `place.fail.*` reasons, and observes `flow.cf.placed`.
#[allow(clippy::too_many_arguments)]
pub fn min_feasible_cf_observed(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    search: &CfSearch,
    seed: u64,
    obs: &dyn Recorder,
    name: &str,
) -> Option<CfResult> {
    let mut sp = span(obs, Phase::Place, name);
    let steps = ((search.max - search.start) / search.step).round() as u32;
    for i in 0..=steps {
        let cf = search.start + f64::from(i) * search.step;
        if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, cf, seed, obs) {
            let attempts = i + 1;
            sp.field("cf", cf);
            sp.field("attempts", f64::from(attempts));
            obs.count("pblock.search.tool_runs", u64::from(attempts));
            obs.count("pblock.search.feasible", 1);
            obs.observe("flow.cf.placed", cf);
            return Some(CfResult {
                cf,
                pblock,
                placement,
                attempts,
            });
        }
    }
    sp.field("attempts", f64::from(steps + 1));
    obs.count("pblock.search.infeasible", 1);
    obs.count("pblock.search.wasted_runs", u64::from(steps + 1));
    None
}

/// Outcome of the estimator-guided search of Section VIII.
#[derive(Debug, Clone)]
pub struct GuidedResult {
    /// The feasible CF settled on.
    pub cf: f64,
    /// The PBlock at that CF.
    pub pblock: PBlock,
    /// The placement inside it.
    pub placement: Placement,
    /// Tool runs spent in total.
    pub attempts: u32,
    /// Whether the predicted CF was feasible on the very first run.
    pub first_try: bool,
}

/// The Section VIII procedure: run the predicted CF; when it underestimates,
/// "increment the correction factor by 0.1 and when a feasible correction
/// factor is found, the last interval is searched with a resolution of
/// 0.02". Returns `None` when nothing up to `max_cf` places.
#[allow(clippy::too_many_arguments)]
pub fn guided_search(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    predicted_cf: f64,
    max_cf: f64,
    seed: u64,
) -> Option<GuidedResult> {
    guided_search_observed(
        gen,
        stats,
        packing,
        shape,
        model,
        predicted_cf,
        max_cf,
        seed,
        noop(),
        "",
    )
}

/// [`guided_search`] with telemetry: a `place`-phase span plus the same
/// counters as [`min_feasible_cf_observed`], `pblock.search.first_try`
/// when the predicted CF places directly, and the requested/placed CF
/// observation pair whose gap is the estimator's bias.
#[allow(clippy::too_many_arguments)]
pub fn guided_search_observed(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    predicted_cf: f64,
    max_cf: f64,
    seed: u64,
    obs: &dyn Recorder,
    name: &str,
) -> Option<GuidedResult> {
    const COARSE: f64 = 0.1;
    const FINE: f64 = 0.02;
    let mut sp = span(obs, Phase::Place, name);
    sp.field("cf_predicted", predicted_cf);
    obs.observe("flow.cf.requested", predicted_cf);
    let finish = |sp: &mut tms_obs::Span<'_>, r: &GuidedResult| {
        sp.field("cf", r.cf);
        sp.field("attempts", f64::from(r.attempts));
        sp.field("first_try", f64::from(u8::from(r.first_try)));
        obs.count("pblock.search.tool_runs", u64::from(r.attempts));
        obs.count("pblock.search.feasible", 1);
        if r.first_try {
            obs.count("pblock.search.first_try", 1);
        }
        obs.observe("flow.cf.placed", r.cf);
    };
    let mut attempts = 1;
    if let Ok((pblock, placement)) =
        attempt(gen, stats, packing, shape, model, predicted_cf, seed, obs)
    {
        let r = GuidedResult {
            cf: predicted_cf,
            pblock,
            placement,
            attempts,
            first_try: true,
        };
        finish(&mut sp, &r);
        return Some(r);
    }
    // Coarse ascent.
    let mut lo = predicted_cf;
    let mut found: Option<(f64, PBlock, Placement)> = None;
    let mut cf = predicted_cf + COARSE;
    while cf <= max_cf + 1e-9 {
        attempts += 1;
        if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, cf, seed, obs) {
            found = Some((cf, pblock, placement));
            break;
        }
        lo = cf;
        cf += COARSE;
    }
    let Some((coarse_cf, mut best_pblock, mut best_placement)) = found else {
        sp.field("attempts", f64::from(attempts));
        obs.count("pblock.search.infeasible", 1);
        obs.count("pblock.search.wasted_runs", u64::from(attempts));
        return None;
    };
    // Fine search of the last interval (lo, coarse_cf).
    let mut best_cf = coarse_cf;
    let mut fine = lo + FINE;
    while fine < coarse_cf - 1e-9 {
        attempts += 1;
        if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, fine, seed, obs)
        {
            best_cf = fine;
            best_pblock = pblock;
            best_placement = placement;
            break;
        }
        fine += FINE;
    }
    let r = GuidedResult {
        cf: best_cf,
        pblock: best_pblock,
        placement: best_placement,
        attempts,
        first_try: false,
    };
    finish(&mut sp, &r);
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::quick_place;
    use tms_synth::pack;

    fn prepared(
        build: impl FnOnce(&mut NetlistBuilder),
    ) -> (NetlistStats, PackingReport, tms_place::ShapeReport) {
        let mut b = NetlistBuilder::new("s");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        (stats, packing, shape)
    }

    #[test]
    fn min_cf_found_for_plain_logic() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..600 {
                b.lut(6);
            }
            for _ in 0..600 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let r = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
        )
        .expect("feasible");
        assert!((0.9..=2.0).contains(&r.cf), "cf = {}", r.cf);
        // One attempt per step up to the found CF.
        let expected = ((r.cf - 0.9) / 0.02).round() as u32 + 1;
        assert_eq!(r.attempts, expected);
    }

    #[test]
    fn min_cf_is_minimal() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..900u16 {
                b.ff(ControlSet::new(0, i % 24 + 1, 0));
            }
            for _ in 0..300 {
                b.lut(5);
            }
        });
        let model = PlacementModel::deterministic();
        let search = CfSearch::default();
        let r = min_feasible_cf(&gen, &stats, &packing, &shape, &model, &search, 1).unwrap();
        if r.cf > search.start + 1e-9 {
            // The step below the found CF must fail.
            let below = r.cf - search.step;
            let pb = gen.generate(&shape, below).unwrap();
            assert!(
                place_in_region(&stats, &packing, &dev, &pb.rect, &model, 1).is_err(),
                "cf {below} should be infeasible"
            );
        }
    }

    #[test]
    fn guided_first_try_when_prediction_is_generous() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let r = guided_search(&gen, &stats, &packing, &shape, &model, 2.0, 3.0, 1).unwrap();
        assert!(r.first_try);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.cf, 2.0);
    }

    #[test]
    fn guided_recovers_from_underestimate() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..800 {
                b.lut(6);
            }
            for _ in 0..1200 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let min = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
        )
        .unwrap();
        // Predict clearly below the minimum.
        let predicted = (min.cf - 0.3).max(0.1);
        let r = guided_search(&gen, &stats, &packing, &shape, &model, predicted, 3.0, 1).unwrap();
        assert!(!r.first_try);
        assert!(
            r.cf >= min.cf - 0.021,
            "guided cf {} << min {}",
            r.cf,
            min.cf
        );
        assert!(
            r.cf <= min.cf + 0.1 + 1e-9,
            "guided cf {} too loose vs {}",
            r.cf,
            min.cf
        );
        assert!(r.attempts >= 2);
    }

    #[test]
    fn impossible_module_returns_none() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..500 {
                b.bram();
            }
        });
        let model = PlacementModel::deterministic();
        assert!(min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1
        )
        .is_none());
        assert!(guided_search(&gen, &stats, &packing, &shape, &model, 1.0, 3.0, 1).is_none());
    }

    #[test]
    fn observed_search_reconciles_counters_with_the_result() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..600 {
                b.lut(6);
            }
            for _ in 0..600 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let sink = AggregatingSink::new();
        let r = min_feasible_cf_observed(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
            &sink,
            "m0",
        )
        .expect("feasible");
        assert_eq!(sink.phase_spans(tms_obs::Phase::Place), 1);
        assert_eq!(
            sink.counter("pblock.search.tool_runs"),
            u64::from(r.attempts)
        );
        assert_eq!(sink.counter("pblock.search.feasible"), 1);
        assert_eq!(sink.counter("pblock.search.infeasible"), 0);
        // Every failed attempt before the minimum left a classified reason.
        let fail_kinds = [
            "place.fail.off-device",
            "place.fail.slices",
            "place.fail.m-slice",
            "place.fail.bram-column",
            "place.fail.dsp-column",
            "place.fail.carry-chain",
            "place.fail.congestion",
            "pblock.generate.failed",
        ];
        let fails: u64 = fail_kinds.iter().map(|k| sink.counter(k)).sum();
        assert_eq!(fails, u64::from(r.attempts) - 1);
        let (n, sum) = sink.observation("flow.cf.placed").unwrap();
        assert_eq!(n, 1);
        assert!((sum - r.cf).abs() < 1e-9);
    }

    #[test]
    fn observed_guided_search_counts_first_try_and_cf_gap() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let sink = AggregatingSink::new();
        let r = guided_search_observed(
            &gen, &stats, &packing, &shape, &model, 2.0, 3.0, 1, &sink, "m1",
        )
        .unwrap();
        assert!(r.first_try);
        assert_eq!(sink.counter("pblock.search.first_try"), 1);
        assert_eq!(sink.counter("pblock.search.tool_runs"), 1);
        assert_eq!(sink.observation("flow.cf.requested"), Some((1, 2.0)));
        assert_eq!(sink.observation("flow.cf.placed"), Some((1, 2.0)));
    }

    #[test]
    fn observed_infeasible_search_counts_wasted_runs() {
        use tms_obs::AggregatingSink;
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..500 {
                b.bram();
            }
        });
        let model = PlacementModel::deterministic();
        let sink = AggregatingSink::new();
        let search = CfSearch::default();
        assert!(min_feasible_cf_observed(
            &gen, &stats, &packing, &shape, &model, &search, 1, &sink, "hopeless",
        )
        .is_none());
        let steps = ((search.max - search.start) / search.step).round() as u64 + 1;
        assert_eq!(sink.counter("pblock.search.infeasible"), 1);
        assert_eq!(sink.counter("pblock.search.wasted_runs"), steps);
        assert_eq!(sink.counter("pblock.search.tool_runs"), 0);
        // Every wasted run left a classified reason: either the generator
        // could not produce a PBlock at that CF or placement failed.
        assert_eq!(
            sink.counter("place.fail.bram-column") + sink.counter("pblock.generate.failed"),
            steps
        );
    }

    #[test]
    fn search_attempts_track_distance_from_start() {
        // A module needing a high CF costs proportionally more tool runs
        // when started from a constant low CF — the Section VIII effect.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..2000u16 {
                b.ff(ControlSet::new(0, i % 40 + 1, 0));
            }
            for _ in 0..500 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let from_low = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch {
                start: 0.9,
                step: 0.02,
                max: 3.0,
            },
            1,
        )
        .unwrap();
        let guided = guided_search(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            from_low.cf - 0.05,
            3.0,
            1,
        )
        .unwrap();
        assert!(guided.attempts < from_low.attempts);
    }
}
