//! Correction-factor searches: dataset labelling and the estimator loop.

use crate::generator::{PBlock, PBlockGenerator};
use tms_netlist::NetlistStats;
use tms_place::{place_in_region, PlaceError, Placement, PlacementModel};
use tms_synth::PackingReport;

/// Parameters of the linear minimal-CF search (Section VII: start 0.9,
/// resolution 0.02).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfSearch {
    /// First CF attempted.
    pub start: f64,
    /// Search resolution.
    pub step: f64,
    /// Give up beyond this CF.
    pub max: f64,
}

impl Default for CfSearch {
    fn default() -> Self {
        CfSearch {
            start: 0.9,
            step: 0.02,
            max: 3.0,
        }
    }
}

impl CfSearch {
    /// The wider search the cnvW1A1 analysis uses (Figure 4 shows minimal
    /// CFs below 0.7, so labelling starts lower than 0.9).
    pub fn wide() -> Self {
        CfSearch {
            start: 0.5,
            step: 0.02,
            max: 3.0,
        }
    }
}

/// A successful CF search outcome.
#[derive(Debug, Clone)]
pub struct CfResult {
    /// The minimal feasible correction factor found.
    pub cf: f64,
    /// The PBlock generated at that CF.
    pub pblock: PBlock,
    /// The detailed placement inside it.
    pub placement: Placement,
    /// Place-and-route attempts spent (tool runs).
    pub attempts: u32,
}

/// One place-and-route attempt at a given CF.
fn attempt(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    cf: f64,
    seed: u64,
) -> Result<(PBlock, Placement), Option<PlaceError>> {
    let Some(pblock) = gen.generate(shape, cf) else {
        return Err(None);
    };
    match place_in_region(stats, packing, gen.device(), &pblock.rect, model, seed) {
        Ok(p) => Ok((pblock, p)),
        Err(e) => Err(Some(e)),
    }
}

/// Find the minimal feasible CF by linear search (the labelling procedure
/// of Section VII). Returns `None` when no CF up to `search.max` places.
#[allow(clippy::too_many_arguments)]
pub fn min_feasible_cf(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    search: &CfSearch,
    seed: u64,
) -> Option<CfResult> {
    let steps = ((search.max - search.start) / search.step).round() as u32;
    for i in 0..=steps {
        let cf = search.start + f64::from(i) * search.step;
        if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, cf, seed) {
            return Some(CfResult {
                cf,
                pblock,
                placement,
                attempts: i + 1,
            });
        }
    }
    None
}

/// Outcome of the estimator-guided search of Section VIII.
#[derive(Debug, Clone)]
pub struct GuidedResult {
    /// The feasible CF settled on.
    pub cf: f64,
    /// The PBlock at that CF.
    pub pblock: PBlock,
    /// The placement inside it.
    pub placement: Placement,
    /// Tool runs spent in total.
    pub attempts: u32,
    /// Whether the predicted CF was feasible on the very first run.
    pub first_try: bool,
}

/// The Section VIII procedure: run the predicted CF; when it underestimates,
/// "increment the correction factor by 0.1 and when a feasible correction
/// factor is found, the last interval is searched with a resolution of
/// 0.02". Returns `None` when nothing up to `max_cf` places.
#[allow(clippy::too_many_arguments)]
pub fn guided_search(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &tms_place::ShapeReport,
    model: &PlacementModel,
    predicted_cf: f64,
    max_cf: f64,
    seed: u64,
) -> Option<GuidedResult> {
    const COARSE: f64 = 0.1;
    const FINE: f64 = 0.02;
    let mut attempts = 1;
    if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, predicted_cf, seed)
    {
        return Some(GuidedResult {
            cf: predicted_cf,
            pblock,
            placement,
            attempts,
            first_try: true,
        });
    }
    // Coarse ascent.
    let mut lo = predicted_cf;
    let mut found: Option<(f64, PBlock, Placement)> = None;
    let mut cf = predicted_cf + COARSE;
    while cf <= max_cf + 1e-9 {
        attempts += 1;
        if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, cf, seed) {
            found = Some((cf, pblock, placement));
            break;
        }
        lo = cf;
        cf += COARSE;
    }
    let (coarse_cf, mut best_pblock, mut best_placement) = found?;
    // Fine search of the last interval (lo, coarse_cf).
    let mut best_cf = coarse_cf;
    let mut fine = lo + FINE;
    while fine < coarse_cf - 1e-9 {
        attempts += 1;
        if let Ok((pblock, placement)) = attempt(gen, stats, packing, shape, model, fine, seed) {
            best_cf = fine;
            best_pblock = pblock;
            best_placement = placement;
            break;
        }
        fine += FINE;
    }
    Some(GuidedResult {
        cf: best_cf,
        pblock: best_pblock,
        placement: best_placement,
        attempts,
        first_try: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::quick_place;
    use tms_synth::pack;

    fn prepared(
        build: impl FnOnce(&mut NetlistBuilder),
    ) -> (NetlistStats, PackingReport, tms_place::ShapeReport) {
        let mut b = NetlistBuilder::new("s");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        (stats, packing, shape)
    }

    #[test]
    fn min_cf_found_for_plain_logic() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..600 {
                b.lut(6);
            }
            for _ in 0..600 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let r = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
        )
        .expect("feasible");
        assert!((0.9..=2.0).contains(&r.cf), "cf = {}", r.cf);
        // One attempt per step up to the found CF.
        let expected = ((r.cf - 0.9) / 0.02).round() as u32 + 1;
        assert_eq!(r.attempts, expected);
    }

    #[test]
    fn min_cf_is_minimal() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..900u16 {
                b.ff(ControlSet::new(0, i % 24 + 1, 0));
            }
            for _ in 0..300 {
                b.lut(5);
            }
        });
        let model = PlacementModel::deterministic();
        let search = CfSearch::default();
        let r = min_feasible_cf(&gen, &stats, &packing, &shape, &model, &search, 1).unwrap();
        if r.cf > search.start + 1e-9 {
            // The step below the found CF must fail.
            let below = r.cf - search.step;
            let pb = gen.generate(&shape, below).unwrap();
            assert!(
                place_in_region(&stats, &packing, &dev, &pb.rect, &model, 1).is_err(),
                "cf {below} should be infeasible"
            );
        }
    }

    #[test]
    fn guided_first_try_when_prediction_is_generous() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let r = guided_search(&gen, &stats, &packing, &shape, &model, 2.0, 3.0, 1).unwrap();
        assert!(r.first_try);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.cf, 2.0);
    }

    #[test]
    fn guided_recovers_from_underestimate() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            let cs = ControlSet::basic();
            for _ in 0..800 {
                b.lut(6);
            }
            for _ in 0..1200 {
                b.ff(cs);
            }
        });
        let model = PlacementModel::deterministic();
        let min = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1,
        )
        .unwrap();
        // Predict clearly below the minimum.
        let predicted = (min.cf - 0.3).max(0.1);
        let r = guided_search(&gen, &stats, &packing, &shape, &model, predicted, 3.0, 1).unwrap();
        assert!(!r.first_try);
        assert!(
            r.cf >= min.cf - 0.021,
            "guided cf {} << min {}",
            r.cf,
            min.cf
        );
        assert!(
            r.cf <= min.cf + 0.1 + 1e-9,
            "guided cf {} too loose vs {}",
            r.cf,
            min.cf
        );
        assert!(r.attempts >= 2);
    }

    #[test]
    fn impossible_module_returns_none() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for _ in 0..500 {
                b.bram();
            }
        });
        let model = PlacementModel::deterministic();
        assert!(min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch::default(),
            1
        )
        .is_none());
        assert!(guided_search(&gen, &stats, &packing, &shape, &model, 1.0, 3.0, 1).is_none());
    }

    #[test]
    fn search_attempts_track_distance_from_start() {
        // A module needing a high CF costs proportionally more tool runs
        // when started from a constant low CF — the Section VIII effect.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(|b| {
            for i in 0..2000u16 {
                b.ff(ControlSet::new(0, i % 40 + 1, 0));
            }
            for _ in 0..500 {
                b.lut(6);
            }
        });
        let model = PlacementModel::deterministic();
        let from_low = min_feasible_cf(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            &CfSearch {
                start: 0.9,
                step: 0.02,
                max: 3.0,
            },
            1,
        )
        .unwrap();
        let guided = guided_search(
            &gen,
            &stats,
            &packing,
            &shape,
            &model,
            from_low.cf - 0.05,
            3.0,
            1,
        )
        .unwrap();
        assert!(guided.attempts < from_low.attempts);
    }
}
