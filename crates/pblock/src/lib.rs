//! # tms-pblock — PBlock construction and correction-factor search
//!
//! Implements the RapidWright PBlock algorithm of Figure 1 and the searches
//! built on top of it:
//!
//! * [`PBlockGenerator`] — turns a [`tms_place::ShapeReport`] plus a
//!   correction factor (CF) into a concrete rectangular area constraint on
//!   the device: `target = ⌈estimate · CF⌉` slices, height from the constant
//!   aspect ratio (floored by the tallest carry chain when the shape report
//!   is honoured), width grown column-by-column until the window covers the
//!   slice target *and* the hard M-slice / BRAM / DSP demand.
//! * [`min_feasible_cf`] — the paper's reference labelling procedure:
//!   starting from `CF = 0.9`, increase in steps of 0.02 until the detailed
//!   placement succeeds (Section VII). Produces the training label and the
//!   Figure 4 distribution.
//! * [`guided_search`] — the estimator-in-the-loop procedure of Section
//!   VIII: try the predicted CF; on failure increase by 0.1 until feasible,
//!   then re-search the last interval at 0.02 resolution. Tool runs are
//!   counted so the 1.8× run-count comparison against a constant-CF start
//!   can be reproduced.
//! * [`resolution_study`] — the Section VI-C analysis of the search step
//!   magnitude versus module size.
//!
//! ```
//! use tms_device::Device;
//! use tms_netlist::{NetlistBuilder, ControlSet};
//! use tms_place::{quick_place, PlacementModel};
//! use tms_pblock::{PBlockGenerator, min_feasible_cf, CfSearch};
//! use tms_synth::pack;
//!
//! let mut b = NetlistBuilder::new("demo");
//! for _ in 0..200 { b.lut(6); }
//! for _ in 0..200 { b.ff(ControlSet::basic()); }
//! let nl = b.finish();
//! let stats = nl.stats();
//! let packing = pack(&stats);
//! let shape = quick_place(&stats, &packing);
//!
//! let dev = Device::xc7z020();
//! let gen = PBlockGenerator::new(&dev, true);
//! let model = PlacementModel::deterministic();
//! let found = min_feasible_cf(&gen, &stats, &packing, &shape, &model,
//!                             &CfSearch::default(), 42).expect("feasible");
//! assert!(found.cf >= 0.9 && found.cf <= 2.0);
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod resolution;
pub mod search;

pub use generator::{PBlock, PBlockGenerator};
pub use resolution::{resolution_study, ResolutionPoint, STANDARD_STEPS};
pub use search::{
    guided_search, guided_search_observed, min_feasible_cf, min_feasible_cf_observed,
    min_feasible_cf_reference_observed, CfResult, CfSearch, GuidedResult,
};
