//! The Figure-1 PBlock generator.

use tms_device::{
    ColumnKind, ColumnSignature, Device, Rect, SliceCapacity, DSP48_ROWS, RAMB36_ROWS,
};
use tms_place::ShapeReport;

/// A concrete rectangular area constraint for one module's implementation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PBlock {
    /// Location and extent on the pre-implementation device (anchored at
    /// row 0; the stitcher relocates it later).
    pub rect: Rect,
    /// Column-kind sequence under the rectangle — the relocation signature.
    pub signature: ColumnSignature,
    /// Resource capacity inside the rectangle.
    pub capacity: SliceCapacity,
    /// The correction factor this PBlock was generated for.
    pub cf: f64,
    /// The slice target `⌈estimate · cf⌉` the generator satisfied.
    pub target_slices: u32,
}

impl PBlock {
    /// Slack between provided and targeted slices (column snapping).
    pub fn slack_slices(&self) -> u32 {
        self.capacity.slices().saturating_sub(self.target_slices)
    }
}

/// Per-column prefix sums for O(1) window-capacity queries.
struct Prefix {
    l: Vec<u32>,
    m: Vec<u32>,
    bram_cols: Vec<u32>,
    dsp_cols: Vec<u32>,
    clock_cols: Vec<u32>,
}

impl Prefix {
    fn build(device: &Device) -> Prefix {
        let w = device.width() as usize;
        let mut l = vec![0u32; w + 1];
        let mut m = vec![0u32; w + 1];
        let mut bram_cols = vec![0u32; w + 1];
        let mut dsp_cols = vec![0u32; w + 1];
        let mut clock_cols = vec![0u32; w + 1];
        for (i, col) in device.columns().iter().enumerate() {
            l[i + 1] = l[i] + u32::from(col.kind == ColumnKind::ClbL);
            m[i + 1] = m[i] + u32::from(col.kind == ColumnKind::ClbM);
            bram_cols[i + 1] = bram_cols[i] + u32::from(col.kind == ColumnKind::Bram);
            dsp_cols[i + 1] = dsp_cols[i] + u32::from(col.kind == ColumnKind::Dsp);
            clock_cols[i + 1] = clock_cols[i] + u32::from(col.kind == ColumnKind::Clock);
        }
        Prefix {
            l,
            m,
            bram_cols,
            dsp_cols,
            clock_cols,
        }
    }

    /// Capacity of the window `[x0, x0+w) × [0, h)`.
    fn window(&self, x0: u32, w: u32, h: u32) -> SliceCapacity {
        let (a, b) = (x0 as usize, (x0 + w) as usize);
        SliceCapacity {
            l_slices: (self.l[b] - self.l[a]) * h,
            m_slices: (self.m[b] - self.m[a]) * h,
            bram36: (self.bram_cols[b] - self.bram_cols[a]) * (h / RAMB36_ROWS),
            dsp48: (self.dsp_cols[b] - self.dsp_cols[a]) * (h / DSP48_ROWS),
            clock_columns: self.clock_cols[b] - self.clock_cols[a],
        }
    }
}

/// Generates PBlocks on a fixed device per Figure 1.
pub struct PBlockGenerator<'d> {
    device: &'d Device,
    prefix: Prefix,
    /// Whether the carry-chain shape report constrains the height.
    /// Disabling this reproduces the Section V-C failure mode.
    pub use_shape_report: bool,
}

impl<'d> PBlockGenerator<'d> {
    /// Create a generator for `device`.
    pub fn new(device: &'d Device, use_shape_report: bool) -> Self {
        PBlockGenerator {
            device,
            prefix: Prefix::build(device),
            use_shape_report,
        }
    }

    /// The device PBlocks are generated on.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Generate the PBlock for `shape` at correction factor `cf`.
    ///
    /// Returns `None` when no rectangle on the device can satisfy the slice
    /// target and hard demand (module too large for the part).
    pub fn generate(&self, shape: &ShapeReport, cf: f64) -> Option<PBlock> {
        let cf = cf.max(0.0);
        let target = (f64::from(shape.est_slices) * cf).ceil() as u32;
        let demand = shape.demand;

        if target == 0 && demand == SliceCapacity::default() {
            // Degenerate one-tile PBlock.
            return self.freeze(Rect::new(0, 0, 1, 1), cf, 0);
        }

        let rows = self.device.rows();
        let mut h = ((f64::from(target) / shape.aspect).sqrt().ceil() as u32).max(1);
        if self.use_shape_report {
            h = h.max(shape.min_height);
        }
        // BRAM/DSP sites only count in whole spans: round the height up so
        // a module with hard blocks is not starved by alignment.
        if demand.bram36 > 0 {
            h = h.max(RAMB36_ROWS);
        }
        if demand.dsp48 > 0 {
            h = h.max(DSP48_ROWS);
        }
        h = h.min(rows);

        loop {
            if let Some((x0, w)) = self.best_window(target, &demand, h) {
                return self.freeze(Rect::new(x0, 0, w, h), cf, target);
            }
            if h >= rows {
                return None;
            }
            // Full width was insufficient at this height: grow the height.
            h = (h + (h / 4).max(1)).min(rows);
        }
    }

    /// Minimal-width window at height `h` covering target and demand;
    /// ties broken towards the leftmost x. Monotonicity of coverage in `w`
    /// admits a two-pointer sweep.
    fn best_window(&self, target: u32, demand: &SliceCapacity, h: u32) -> Option<(u32, u32)> {
        let width = self.device.width();
        let ok = |x0: u32, w: u32| {
            let cap = self.prefix.window(x0, w, h);
            cap.slices() >= target
                && cap.m_slices >= demand.m_slices
                && cap.bram36 >= demand.bram36
                && cap.dsp48 >= demand.dsp48
        };
        let mut best: Option<(u32, u32)> = None;
        let mut w = 1u32;
        for x0 in 0..width {
            if x0 + w > width {
                break;
            }
            // Grow until this window works, then try shrinking from the left
            // at the next x0 (classic minimal-window sweep).
            while x0 + w <= width && !ok(x0, w) {
                w += 1;
            }
            if x0 + w > width {
                break;
            }
            match best {
                Some((_, bw)) if bw <= w => {}
                _ => best = Some((x0, w)),
            }
            // Try a narrower window at subsequent positions.
            if w > 1 {
                w -= 1;
            }
        }
        best
    }

    fn freeze(&self, rect: Rect, cf: f64, target: u32) -> Option<PBlock> {
        let capacity = self.device.capacity_in(&rect);
        let signature = self.device.signature(rect.x, rect.w);
        Some(PBlock {
            rect,
            signature,
            capacity,
            cf,
            target_slices: target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::quick_place;
    use tms_synth::pack;

    fn shape(build: impl FnOnce(&mut NetlistBuilder)) -> ShapeReport {
        let mut b = NetlistBuilder::new("g");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        quick_place(&stats, &packing)
    }

    #[test]
    fn pblock_covers_target_and_demand() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
            for _ in 0..30 {
                b.lutram(ControlSet::basic());
            }
            b.bram();
        });
        let p = gen.generate(&s, 1.2).expect("feasible pblock");
        assert!(p.capacity.slices() >= p.target_slices);
        assert!(p.capacity.m_slices >= s.demand.m_slices);
        assert!(p.capacity.bram36 >= 1);
        assert_eq!(p.signature.width(), p.rect.w);
    }

    #[test]
    fn higher_cf_never_shrinks_the_pblock() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..800 {
                b.lut(5);
            }
        });
        let mut last_area = 0;
        for cf10 in [8u32, 10, 12, 15, 20] {
            let cf = f64::from(cf10) / 10.0;
            let p = gen.generate(&s, cf).unwrap();
            assert!(
                p.capacity.slices() + 60 >= last_area,
                "slices dropped sharply at cf {cf}: {} < {last_area}",
                p.capacity.slices()
            );
            last_area = last_area.max(p.capacity.slices());
        }
    }

    #[test]
    fn shape_report_enforces_chain_height() {
        let dev = Device::xc7z020();
        let with = PBlockGenerator::new(&dev, true);
        let without = PBlockGenerator::new(&dev, false);
        let s = shape(|b| {
            b.carry_chain(120); // 30 slices tall
        });
        let p_with = with.generate(&s, 1.0).unwrap();
        assert!(p_with.rect.h >= 30);
        let p_without = without.generate(&s, 1.0).unwrap();
        // Ignoring the report yields a square-ish block too short for the
        // chain — the Section V-C wrong-shape failure.
        assert!(p_without.rect.h < 30);
    }

    #[test]
    fn impossible_demand_returns_none() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..200 {
                b.bram(); // more BRAM than the device has columns for
            }
        });
        assert!(gen.generate(&s, 1.0).is_none());
    }

    #[test]
    fn degenerate_module_gets_unit_pblock() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|_| {});
        let p = gen.generate(&s, 1.0).unwrap();
        assert_eq!(p.rect.area(), 1);
    }

    #[test]
    fn prefix_window_matches_device_capacity() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        for (x0, w, h) in [(0u32, 5u32, 10u32), (10, 8, 25), (30, 20, 50), (0, 89, 150)] {
            let fast = gen.prefix.window(x0, w, h);
            let slow = dev.capacity_in(&Rect::new(x0, 0, w, h));
            assert_eq!(fast, slow, "window ({x0},{w},{h})");
        }
    }

    #[test]
    fn bram_module_pblock_contains_excess_slices() {
        // The Figure-4 CF<0.7 mechanism: BRAM-driven PBlocks carry far more
        // slices than the logic needs, so tiny CFs stay feasible.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..12 {
                b.bram();
            }
            for _ in 0..20 {
                b.lut(4);
            }
        });
        let p = gen.generate(&s, 0.5).unwrap();
        assert!(p.capacity.slices() > 4 * p.target_slices);
    }
}
