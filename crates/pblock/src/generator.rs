//! The Figure-1 PBlock generator.

use tms_device::{
    CapacityPrefix, ColumnSignature, Device, Rect, SliceCapacity, DSP48_ROWS, RAMB36_ROWS,
};
use tms_place::ShapeReport;

/// A concrete rectangular area constraint for one module's implementation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PBlock {
    /// Location and extent on the pre-implementation device (anchored at
    /// row 0; the stitcher relocates it later).
    pub rect: Rect,
    /// Column-kind sequence under the rectangle — the relocation signature.
    pub signature: ColumnSignature,
    /// Resource capacity inside the rectangle.
    pub capacity: SliceCapacity,
    /// The correction factor this PBlock was generated for.
    pub cf: f64,
    /// The slice target `⌈estimate · cf⌉` the generator satisfied.
    pub target_slices: u32,
}

impl PBlock {
    /// Slack between provided and targeted slices (column snapping).
    pub fn slack_slices(&self) -> u32 {
        self.capacity.slices().saturating_sub(self.target_slices)
    }
}

/// A hint carried between [`PBlockGenerator::plan_target_resumed`] calls
/// of one module's CF search: the previous (no-larger) target, the initial
/// height its growth sequence started from, and the rectangle it settled
/// on (or `None` when the device was exhausted).
pub(crate) struct PlanResume {
    pub(crate) target: u32,
    pub(crate) h_init: u32,
    pub(crate) result: Option<Rect>,
    /// `⌈target / result.h⌉` — the CLB-column threshold of the settled
    /// window sweep (0 when `result` is `None`). When the next target
    /// rounds to the same threshold at that height, the sweep would make
    /// identical decisions, so its result can be reused outright.
    pub(crate) need_clb: u32,
}

/// Generates PBlocks on a fixed device per Figure 1.
pub struct PBlockGenerator<'d> {
    device: &'d Device,
    prefix: CapacityPrefix,
    /// Whether the carry-chain shape report constrains the height.
    /// Disabling this reproduces the Section V-C failure mode.
    pub use_shape_report: bool,
}

impl<'d> PBlockGenerator<'d> {
    /// Create a generator for `device`.
    pub fn new(device: &'d Device, use_shape_report: bool) -> Self {
        PBlockGenerator {
            device,
            prefix: CapacityPrefix::build(device),
            use_shape_report,
        }
    }

    /// The device PBlocks are generated on.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// The per-column capacity prefix tables of the device — shared with
    /// the search engine so legality checks stay O(1).
    pub fn prefix(&self) -> &CapacityPrefix {
        &self.prefix
    }

    /// The slice target `⌈estimate · max(cf, 0)⌉` the generator aims for.
    pub fn slice_target(&self, shape: &ShapeReport, cf: f64) -> u32 {
        (f64::from(shape.est_slices) * cf.max(0.0)).ceil() as u32
    }

    /// Generate the PBlock for `shape` at correction factor `cf`.
    ///
    /// Returns `None` when no rectangle on the device can satisfy the slice
    /// target and hard demand (module too large for the part).
    pub fn generate(&self, shape: &ShapeReport, cf: f64) -> Option<PBlock> {
        let cf = cf.max(0.0);
        let target = self.slice_target(shape, cf);
        let rect = self.plan_target(shape, target)?;
        Some(self.freeze(rect, cf, target))
    }

    /// The window-search half of [`Self::generate`]: find the rectangle the
    /// PBlock would occupy at `cf`, without materialising the (signature +
    /// capacity) PBlock. The search engine uses this to screen a candidate
    /// rectangle before paying for the freeze.
    pub fn plan(&self, shape: &ShapeReport, cf: f64) -> Option<Rect> {
        self.plan_target(shape, self.slice_target(shape, cf))
    }

    /// [`Self::plan`] keyed directly by the slice target. The planned
    /// rectangle depends on `cf` only through the target, so callers that
    /// step CF can reuse the previous plan whenever the target is unchanged.
    pub(crate) fn plan_target(&self, shape: &ShapeReport, target: u32) -> Option<Rect> {
        self.plan_target_resumed(shape, target, None).0
    }

    /// [`Self::plan_target`] with an optional resumption hint from an
    /// earlier, no-larger target of the *same shape*. Also returns the
    /// initial height of the growth sequence so callers can build the next
    /// hint. The deductions are exact, so the returned rectangle is
    /// identical to a from-scratch plan:
    ///
    /// * window feasibility is antitone in the target, so a smaller
    ///   target's `None` stays `None` (the growth loop always ends at the
    ///   full device height, where that smaller target already failed);
    /// * the height-growth sequence is a pure function of its initial
    ///   height, so when that matches, every height the earlier plan
    ///   rejected before settling is rejected again — the loop can start
    ///   directly at the earlier plan's height.
    pub(crate) fn plan_target_resumed(
        &self,
        shape: &ShapeReport,
        target: u32,
        resume: Option<&PlanResume>,
    ) -> (Option<Rect>, u32) {
        let demand = shape.demand;

        if target == 0 && demand == SliceCapacity::default() {
            // Degenerate one-tile PBlock.
            return (Some(Rect::new(0, 0, 1, 1)), 0);
        }

        let rows = self.device.rows();
        let mut h = ((f64::from(target) / shape.aspect).sqrt().ceil() as u32).max(1);
        if self.use_shape_report {
            h = h.max(shape.min_height);
        }
        // BRAM/DSP sites only count in whole spans: round the height up so
        // a module with hard blocks is not starved by alignment.
        if demand.bram36 > 0 {
            h = h.max(RAMB36_ROWS);
        }
        if demand.dsp48 > 0 {
            h = h.max(DSP48_ROWS);
        }
        h = h.min(rows);
        let h_init = h;
        if let Some(prev) = resume {
            if prev.target <= target {
                match prev.result {
                    None => return (None, h_init),
                    Some(rect) if prev.h_init == h_init => {
                        // The demand thresholds depend only on the height,
                        // so when the CLB threshold also matches, the sweep
                        // at `rect.h` sees the identical threshold vector
                        // and returns the identical window.
                        if target.div_ceil(rect.h) == prev.need_clb {
                            return (Some(rect), h_init);
                        }
                        h = rect.h;
                    }
                    _ => {}
                }
            }
        }

        loop {
            if let Some((x0, w)) = self.best_window(target, &demand, h) {
                return (Some(Rect::new(x0, 0, w, h)), h_init);
            }
            if h >= rows {
                return (None, h_init);
            }
            // Full width was insufficient at this height: grow the height.
            h = (h + (h / 4).max(1)).min(rows);
        }
    }

    /// Minimal-width window at height `h` covering target and demand;
    /// ties broken towards the leftmost x. Monotonicity of coverage in `w`
    /// admits a two-pointer sweep.
    ///
    /// A window of height `h ≤ rows` anchored at row 0 provides
    /// `columns-of-kind × per-column-sites`, so each capacity test reduces
    /// to a per-kind column-count threshold — the sweep compares four
    /// prefix differences per candidate instead of materialising a
    /// [`SliceCapacity`]. The thresholds are exact (`cols · per ≥ need ⟺
    /// cols ≥ ⌈need / per⌉` for integer `per > 0`), so the chosen window
    /// is identical to the capacity-based sweep; a unit test pins the two
    /// against each other.
    fn best_window(&self, target: u32, demand: &SliceCapacity, h: u32) -> Option<(u32, u32)> {
        let width = self.device.width();
        let need_clb = target.div_ceil(h);
        let need_m = demand.m_slices.div_ceil(h);
        let bram_per_col = self.prefix.bram36_sites_in_height(h);
        let need_bram = if demand.bram36 == 0 {
            0
        } else if bram_per_col == 0 {
            return None; // no window at this height holds a whole BRAM span
        } else {
            demand.bram36.div_ceil(bram_per_col)
        };
        let dsp_per_col = self.prefix.dsp48_sites_in_height(h);
        let need_dsp = if demand.dsp48 == 0 {
            0
        } else if dsp_per_col == 0 {
            return None;
        } else {
            demand.dsp48.div_ceil(dsp_per_col)
        };
        let (l, m, bram, dsp) = self.prefix.kind_prefix_tables();
        let ok = |x0: u32, w: u32| {
            let (a, b) = (x0 as usize, (x0 + w) as usize);
            let m_cols = m[b] - m[a];
            (l[b] - l[a]) + m_cols >= need_clb
                && m_cols >= need_m
                && bram[b] - bram[a] >= need_bram
                && dsp[b] - dsp[a] >= need_dsp
        };
        // The full-width window dominates every other: if it fails, this
        // height is infeasible and the sweep can be skipped outright.
        if !ok(0, width) {
            return None;
        }
        let mut best: Option<(u32, u32)> = None;
        let mut w = 1u32;
        for x0 in 0..width {
            if x0 + w > width {
                break;
            }
            // Grow until this window works, then try shrinking from the left
            // at the next x0 (classic minimal-window sweep).
            while x0 + w <= width && !ok(x0, w) {
                w += 1;
            }
            if x0 + w > width {
                break;
            }
            match best {
                Some((_, bw)) if bw <= w => {}
                _ => best = Some((x0, w)),
            }
            // Try a narrower window at subsequent positions.
            if w > 1 {
                w -= 1;
            }
        }
        best
    }

    /// Materialise the PBlock for a planned rectangle: capacity via the
    /// O(1) prefix tables, signature from the device columns.
    pub(crate) fn freeze(&self, rect: Rect, cf: f64, target: u32) -> PBlock {
        let capacity = self.prefix.capacity_in(&rect);
        let signature = self.device.signature(rect.x, rect.w);
        PBlock {
            rect,
            signature,
            capacity,
            cf,
            target_slices: target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::quick_place;
    use tms_synth::pack;

    fn shape(build: impl FnOnce(&mut NetlistBuilder)) -> ShapeReport {
        let mut b = NetlistBuilder::new("g");
        build(&mut b);
        let stats = b.finish().stats();
        let packing = pack(&stats);
        quick_place(&stats, &packing)
    }

    #[test]
    fn pblock_covers_target_and_demand() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..400 {
                b.lut(6);
            }
            for _ in 0..30 {
                b.lutram(ControlSet::basic());
            }
            b.bram();
        });
        let p = gen.generate(&s, 1.2).expect("feasible pblock");
        assert!(p.capacity.slices() >= p.target_slices);
        assert!(p.capacity.m_slices >= s.demand.m_slices);
        assert!(p.capacity.bram36 >= 1);
        assert_eq!(p.signature.width(), p.rect.w);
    }

    #[test]
    fn higher_cf_never_shrinks_the_pblock() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..800 {
                b.lut(5);
            }
        });
        let mut last_area = 0;
        for cf10 in [8u32, 10, 12, 15, 20] {
            let cf = f64::from(cf10) / 10.0;
            let p = gen.generate(&s, cf).unwrap();
            assert!(
                p.capacity.slices() + 60 >= last_area,
                "slices dropped sharply at cf {cf}: {} < {last_area}",
                p.capacity.slices()
            );
            last_area = last_area.max(p.capacity.slices());
        }
    }

    #[test]
    fn shape_report_enforces_chain_height() {
        let dev = Device::xc7z020();
        let with = PBlockGenerator::new(&dev, true);
        let without = PBlockGenerator::new(&dev, false);
        let s = shape(|b| {
            b.carry_chain(120); // 30 slices tall
        });
        let p_with = with.generate(&s, 1.0).unwrap();
        assert!(p_with.rect.h >= 30);
        let p_without = without.generate(&s, 1.0).unwrap();
        // Ignoring the report yields a square-ish block too short for the
        // chain — the Section V-C wrong-shape failure.
        assert!(p_without.rect.h < 30);
    }

    #[test]
    fn impossible_demand_returns_none() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..200 {
                b.bram(); // more BRAM than the device has columns for
            }
        });
        assert!(gen.generate(&s, 1.0).is_none());
    }

    #[test]
    fn degenerate_module_gets_unit_pblock() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|_| {});
        let p = gen.generate(&s, 1.0).unwrap();
        assert_eq!(p.rect.area(), 1);
    }

    #[test]
    fn prefix_window_matches_device_capacity() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        for (x0, w, h) in [(0u32, 5u32, 10u32), (10, 8, 25), (30, 20, 50), (0, 89, 150)] {
            let fast = gen.prefix().capacity_in(&Rect::new(x0, 0, w, h));
            let slow = dev.capacity_in(&Rect::new(x0, 0, w, h));
            assert_eq!(fast, slow, "window ({x0},{w},{h})");
        }
    }

    #[test]
    fn plan_and_freeze_compose_to_generate() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..500 {
                b.lut(6);
            }
            b.bram();
            b.carry_chain(40);
        });
        for cf10 in [0u32, 5, 9, 12, 20, 30] {
            let cf = f64::from(cf10) / 10.0;
            let planned = gen.plan(&s, cf);
            let generated = gen.generate(&s, cf);
            match (planned, generated) {
                (Some(rect), Some(p)) => {
                    assert_eq!(rect, p.rect, "cf {cf}");
                    assert_eq!(p.target_slices, gen.slice_target(&s, cf));
                }
                (None, None) => {}
                (a, b) => panic!("plan {a:?} vs generate {b:?} at cf {cf}"),
            }
        }
    }

    /// The threshold-based window sweep must choose the same window as a
    /// sweep that materialises the full capacity per candidate (the
    /// original formulation).
    #[test]
    fn threshold_sweep_matches_capacity_sweep() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let width = dev.width();
        let shapes = [
            shape(|b| {
                for _ in 0..400 {
                    b.lut(6);
                }
                for _ in 0..30 {
                    b.lutram(ControlSet::basic());
                }
                b.bram();
            }),
            shape(|b| {
                for _ in 0..12 {
                    b.bram();
                }
                b.dsp();
                for _ in 0..20 {
                    b.lut(4);
                }
            }),
            shape(|b| {
                b.carry_chain(120);
            }),
        ];
        for s in &shapes {
            for target in [0u32, 1, 7, 50, 200, 800, 3000] {
                for h in [1u32, 3, 9, 10, 20, 50, 150] {
                    let demand = s.demand;
                    let ok = |x0: u32, w: u32| {
                        let cap = dev.capacity_in(&Rect::new(x0, 0, w, h));
                        cap.slices() >= target
                            && cap.m_slices >= demand.m_slices
                            && cap.bram36 >= demand.bram36
                            && cap.dsp48 >= demand.dsp48
                    };
                    let mut slow: Option<(u32, u32)> = None;
                    let mut w = 1u32;
                    for x0 in 0..width {
                        if x0 + w > width {
                            break;
                        }
                        while x0 + w <= width && !ok(x0, w) {
                            w += 1;
                        }
                        if x0 + w > width {
                            break;
                        }
                        match slow {
                            Some((_, bw)) if bw <= w => {}
                            _ => slow = Some((x0, w)),
                        }
                        if w > 1 {
                            w -= 1;
                        }
                    }
                    assert_eq!(
                        gen.best_window(target, &demand, h),
                        slow,
                        "target {target} h {h}"
                    );
                }
            }
        }
    }

    /// Chained resumed planning over a nondecreasing target sequence must
    /// settle on the same rectangles as planning each target from scratch.
    #[test]
    fn resumed_planning_matches_from_scratch() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let shapes = [
            shape(|b| {
                for _ in 0..500 {
                    b.lut(6);
                }
                b.bram();
                b.carry_chain(40);
            }),
            shape(|b| {
                for _ in 0..60 {
                    b.lutram(ControlSet::basic());
                }
                b.dsp();
            }),
            shape(|_| {}),
        ];
        for s in &shapes {
            let mut resume: Option<PlanResume> = None;
            for target in (0..3000).step_by(37) {
                let fresh = gen.plan_target(s, target);
                let (resumed, h_init) = gen.plan_target_resumed(s, target, resume.as_ref());
                assert_eq!(resumed, fresh, "target {target}");
                resume = Some(PlanResume {
                    target,
                    h_init,
                    result: resumed,
                    need_clb: resumed.map_or(0, |r| target.div_ceil(r.h)),
                });
            }
        }
    }

    #[test]
    fn bram_module_pblock_contains_excess_slices() {
        // The Figure-4 CF<0.7 mechanism: BRAM-driven PBlocks carry far more
        // slices than the logic needs, so tiny CFs stay feasible.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let s = shape(|b| {
            for _ in 0..12 {
                b.bram();
            }
            for _ in 0..20 {
                b.lut(4);
            }
        });
        let p = gen.generate(&s, 0.5).unwrap();
        assert!(p.capacity.slices() > 4 * p.target_slices);
    }
}
