//! The Section VI-C search-resolution study.

use crate::generator::PBlockGenerator;
use crate::search::{min_feasible_cf, CfSearch};
use tms_netlist::NetlistStats;
use tms_place::{PlacementModel, ShapeReport};
use tms_synth::PackingReport;

/// One row of the resolution study: the CF the search settles on (and the
/// PBlock it buys) at a given step size.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ResolutionPoint {
    /// Search step used.
    pub step: f64,
    /// CF found at this resolution (`None` if the search failed).
    pub found_cf: Option<f64>,
    /// PBlock slice capacity at the found CF.
    pub pblock_slices: Option<u32>,
    /// Tool runs spent.
    pub attempts: u32,
}

/// Sweep the CF search step for one module, reproducing the observation of
/// Section VI-C: small modules (≈100 LUTs) are insensitive to steps below
/// 0.1 because column snapping quantises the PBlock anyway, while ≈2,500-LUT
/// modules need steps of 0.03 or finer.
pub fn resolution_study(
    gen: &PBlockGenerator<'_>,
    stats: &NetlistStats,
    packing: &PackingReport,
    shape: &ShapeReport,
    model: &PlacementModel,
    steps: &[f64],
    seed: u64,
) -> Vec<ResolutionPoint> {
    steps
        .iter()
        .map(|&step| {
            let search = CfSearch {
                start: 0.9,
                step,
                max: 3.0,
            };
            match min_feasible_cf(gen, stats, packing, shape, model, &search, seed) {
                Some(r) => ResolutionPoint {
                    step,
                    found_cf: Some(r.cf),
                    pblock_slices: Some(r.pblock.capacity.slices()),
                    attempts: r.attempts,
                },
                None => ResolutionPoint {
                    step,
                    found_cf: None,
                    pblock_slices: None,
                    attempts: 0,
                },
            }
        })
        .collect()
}

/// Standard steps the study sweeps.
pub const STANDARD_STEPS: [f64; 4] = [0.1, 0.05, 0.02, 0.01];

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::Device;
    use tms_netlist::{ControlSet, NetlistBuilder};
    use tms_place::quick_place;
    use tms_synth::pack;

    fn prepared(luts: u32, ffs: u32, ncs: u16) -> (NetlistStats, PackingReport, ShapeReport) {
        let mut b = NetlistBuilder::new("r");
        for _ in 0..luts {
            b.lut(6);
        }
        for i in 0..ffs {
            b.ff(ControlSet::new(0, (i as u16 % ncs) + 1, 0));
        }
        let stats = b.finish().stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        (stats, packing, shape)
    }

    #[test]
    fn coarser_steps_cost_fewer_attempts_but_looser_cf() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(2000, 3000, 30);
        let model = PlacementModel::deterministic();
        let pts = resolution_study(&gen, &stats, &packing, &shape, &model, &STANDARD_STEPS, 1);
        assert_eq!(pts.len(), 4);
        let coarse = &pts[0];
        let fine = &pts[2];
        let (c, f) = (coarse.found_cf.unwrap(), fine.found_cf.unwrap());
        assert!(c >= f - 1e-9, "coarse {c} vs fine {f}");
        assert!(fine.attempts >= coarse.attempts);
    }

    #[test]
    fn small_modules_are_insensitive_to_resolution() {
        // Column snapping floors the PBlock for ~100-LUT modules, so the
        // step size barely changes the PBlock actually produced.
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let (stats, packing, shape) = prepared(100, 100, 1);
        let model = PlacementModel::deterministic();
        let pts = resolution_study(&gen, &stats, &packing, &shape, &model, &[0.1, 0.02], 1);
        let a = pts[0].pblock_slices.unwrap() as f64;
        let b = pts[1].pblock_slices.unwrap() as f64;
        assert!((a - b).abs() / b < 0.35, "pblock sizes {a} vs {b}");
    }

    #[test]
    fn infeasible_module_yields_empty_points() {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let mut b = NetlistBuilder::new("huge");
        for _ in 0..400 {
            b.bram();
        }
        let stats = b.finish().stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        let model = PlacementModel::deterministic();
        let pts = resolution_study(&gen, &stats, &packing, &shape, &model, &[0.1], 1);
        assert!(pts[0].found_cf.is_none());
    }
}
