//! Calibration harness: labels a sweep with minimal CFs and prints the
//! distribution, so the placement-model constants can be tuned to the
//! paper's reported CF range (≈0.7 .. 1.7, bulk around 0.9-1.3).

use rayon::prelude::*;
use tms_device::Device;
use tms_pblock::{min_feasible_cf, CfSearch, PBlockGenerator};
use tms_place::{quick_place, PlacementModel};
use tms_rtlgen::{standard_sweep, SweepConfig};
use tms_synth::pack;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let cfg = SweepConfig {
        target_modules: n,
        max_luts: 5_000,
        min_luts: 2,
    };
    let modules = standard_sweep(&cfg, 2024);
    let dev = Device::xc7z020();
    let gen = PBlockGenerator::new(&dev, true);
    let model = PlacementModel::default();
    let search = CfSearch {
        start: 0.5,
        step: 0.02,
        max: 3.0,
    };

    let results: Vec<(String, &'static str, u32, f64)> = modules
        .par_iter()
        .filter_map(|m| {
            let stats = m.netlist.stats();
            let packing = pack(&stats);
            let shape = quick_place(&stats, &packing);
            let key = tms_place::detail::module_key(m.netlist.name(), 99);
            min_feasible_cf(&gen, &stats, &packing, &shape, &model, &search, key).map(|r| {
                (
                    m.netlist.name().to_string(),
                    m.kind.label(),
                    stats.counts.lut_sites(),
                    r.cf,
                )
            })
        })
        .collect();

    let mut hist = [0u32; 40];
    for (_, _, _, cf) in &results {
        let b = (((cf - 0.5) / 0.05) as usize).min(39);
        hist[b] += 1;
    }
    println!("labelled {}/{} modules", results.len(), modules.len());
    for (i, c) in hist.iter().enumerate() {
        if *c > 0 {
            let lo = 0.5 + i as f64 * 0.05;
            println!(
                "cf [{:.2},{:.2}): {:4} {}",
                lo,
                lo + 0.05,
                c,
                "#".repeat((*c as usize).min(80))
            );
        }
    }
    // Per-family medians.
    for fam in ["shift", "lutram", "carry", "lfsr", "mixed"] {
        let mut cfs: Vec<f64> = results
            .iter()
            .filter(|(_, k, _, _)| *k == fam)
            .map(|&(_, _, _, cf)| cf)
            .collect();
        if cfs.is_empty() {
            continue;
        }
        cfs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = cfs[cfs.len() / 2];
        let max = cfs[cfs.len() - 1];
        println!("{fam:>7}: n={:4} median={med:.2} max={max:.2}", cfs.len());
    }
    // Size correlation.
    let mut small = Vec::new();
    let mut large = Vec::new();
    for &(_, _, sites, cf) in &results {
        if sites < 300 {
            small.push(cf);
        } else if sites > 2000 {
            large.push(cf);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean cf small(<300 luts)={:.3} n={}, large(>2000)={:.3} n={}",
        mean(&small),
        small.len(),
        mean(&large),
        large.len()
    );
}
