//! The `tms report` renderer: a per-phase flame-style table (plus counter
//! and observation listings) from a JSONL trace.

use crate::metrics::{Histogram, FINE_LATENCY_BUCKETS_US};
use crate::record::TraceEvent;
use crate::sinks::{replay, AggregatingSink};
use crate::Phase;

const BAR_WIDTH: usize = 30;

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Render a parsed trace as a human-readable report: one row per phase
/// with span count, total time, share of all span time and a flame-style
/// bar, followed by the trace's counters and observations.
pub fn render(events: &[TraceEvent]) -> String {
    let sink = AggregatingSink::new();
    replay(events, &sink);
    let total_us = sink.total_us().max(1);

    // Per-phase duration histograms for interpolated quantiles.
    let durations: Vec<Histogram<{ FINE_LATENCY_BUCKETS_US.len() }>> = Phase::ALL
        .iter()
        .map(|_| Histogram::new(FINE_LATENCY_BUCKETS_US))
        .collect();
    for event in events {
        if let TraceEvent::Span(s) = event {
            durations[s.phase.index()].observe(s.duration_us);
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} events ({} spans)\n\n",
        events.len(),
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span(_)))
            .count()
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:>10} {:>7} {:>9} {:>9} {:>9}  {}\n",
        "phase", "spans", "total", "share", "p50", "p99", "p999", "flame"
    ));
    for phase in Phase::ALL {
        let spans = sink.phase_spans(phase);
        if spans == 0 {
            continue;
        }
        let us = sink.phase_total_us(phase);
        let share = us as f64 / total_us as f64;
        let filled = ((share * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
        let h = &durations[phase.index()];
        let q = |q: f64| fmt_us(h.quantile(q).unwrap_or(0));
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>6.1}% {:>9} {:>9} {:>9}  {}{}\n",
            phase.label(),
            spans,
            fmt_us(us),
            share * 100.0,
            q(0.50),
            q(0.99),
            q(0.999),
            "#".repeat(filled),
            ".".repeat(BAR_WIDTH - filled),
        ));
    }

    let snap = sink.snapshot();
    if !snap.counters.is_empty() {
        out.push_str("\ncounters\n");
        for (key, value) in &snap.counters {
            out.push_str(&format!("  {key:<32} {value}\n"));
        }
    }
    if !snap.observations.is_empty() {
        out.push_str("\nobservations (count / mean)\n");
        for obs in &snap.observations {
            let mean = obs.sum / obs.count.max(1) as f64;
            out.push_str(&format!(
                "  {:<32} {:>6} / {:.4}\n",
                obs.key, obs.count, mean
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SpanRecord;

    fn span_event(phase: Phase, us: u64) -> TraceEvent {
        TraceEvent::Span(SpanRecord {
            trace_id: 0,
            phase,
            name: "m".into(),
            start_us: 0,
            duration_us: us,
            fields: Vec::new(),
        })
    }

    #[test]
    fn report_lists_active_phases_counters_and_observations() {
        let events = vec![
            span_event(Phase::Place, 3_000_000),
            span_event(Phase::Place, 1_000_000),
            span_event(Phase::Stitch, 500),
            TraceEvent::Count {
                trace_id: 0,
                key: "cache.hit".into(),
                delta: 7,
            },
            TraceEvent::Observe {
                trace_id: 0,
                key: "flow.cf.placed".into(),
                value: 1.5,
            },
        ];
        let report = render(&events);
        assert!(report.contains("5 events (3 spans)"), "{report}");
        assert!(report.contains("place"), "{report}");
        assert!(report.contains("4.00s"), "{report}");
        assert!(report.contains("stitch"), "{report}");
        assert!(
            !report.contains("route"),
            "idle phases are omitted:\n{report}"
        );
        assert!(report.contains("cache.hit"), "{report}");
        assert!(report.contains('7'), "{report}");
        assert!(report.contains("flow.cf.placed"), "{report}");
        assert!(report.contains("1.5000"), "{report}");
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        let report = render(&[]);
        assert!(report.contains("0 events"));
    }

    #[test]
    fn time_units_scale() {
        assert_eq!(fmt_us(12), "12µs");
        assert_eq!(fmt_us(1_500), "1.50ms");
        assert_eq!(fmt_us(2_250_000), "2.25s");
    }
}
