//! SLO definitions and multi-window burn-rate tracking.
//!
//! An SLO ([`SloSpec`]) gives an endpoint an availability target (at
//! most `1 - availability` of requests may error) and a latency target
//! (at least `latency_goal` of requests must finish within
//! `latency_target_us`). The *burn rate* over a window is the observed
//! bad fraction divided by the budgeted bad fraction: `1.0` means the
//! error budget is being consumed exactly as provisioned; `10.0` means
//! ten times too fast. Following the multi-window alerting practice,
//! [`SloTracker`] reports the burn over both a short (5 min) and a long
//! (1 h) window from one ring of 10-second buckets, so a short spike and
//! a sustained leak are distinguishable on `/metrics`.

use crate::record::now_us;
use std::sync::Mutex;

/// The burn-rate windows every tracker reports: label and width in
/// seconds.
pub const BURN_WINDOWS: [(&str, u64); 2] = [("5m", 300), ("1h", 3600)];

/// Seconds covered by one ring bucket.
const BUCKET_S: u64 = 10;

/// Ring length: enough 10-second buckets to cover the longest window.
const RING: usize = (BURN_WINDOWS[1].1 / BUCKET_S) as usize;

/// An endpoint's service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The endpoint the objective covers.
    pub endpoint: &'static str,
    /// Availability target in `(0, 1)`, e.g. `0.999`: at most 0.1% of
    /// requests may error.
    pub availability: f64,
    /// Latency target: a request slower than this (µs) is "slow".
    pub latency_target_us: u64,
    /// Fraction of requests that must meet the latency target, e.g.
    /// `0.99`.
    pub latency_goal: f64,
}

impl SloSpec {
    /// A sensible default objective: 99.9% availability, 99% of requests
    /// within `latency_target_us`.
    pub fn new(endpoint: &'static str, latency_target_us: u64) -> SloSpec {
        SloSpec {
            endpoint,
            availability: 0.999,
            latency_target_us,
            latency_goal: 0.99,
        }
    }
}

/// One window's burn-rate reading, as exported on `/metrics` and in the
/// `stats` reply.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurnRateSample {
    /// Window label (`5m`, `1h`).
    pub window: String,
    /// Requests observed in the window.
    pub requests: u64,
    /// Errored requests in the window.
    pub errors: u64,
    /// Requests slower than the latency target in the window.
    pub slow: u64,
    /// Error-rate burn: observed error fraction over the availability
    /// error budget (`0.0` when the window is empty).
    pub availability_burn: f64,
    /// Latency burn: observed slow fraction over the latency error
    /// budget (`0.0` when the window is empty).
    pub latency_burn: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    /// Bucket index (`second / BUCKET_S`) the counts belong to; stale
    /// buckets are reset on first touch of a new epoch.
    tag: u64,
    requests: u64,
    errors: u64,
    slow: u64,
}

/// Tracks one endpoint's SLO compliance in a ring of 10-second buckets
/// wide enough for the longest window in [`BURN_WINDOWS`]. Recording
/// takes one short mutex hold; reading sums at most `RING` buckets.
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    ring: Mutex<[Bucket; RING]>,
}

impl SloTracker {
    /// A tracker for `spec` with an empty history.
    pub fn new(spec: SloSpec) -> SloTracker {
        SloTracker {
            spec,
            ring: Mutex::new([Bucket::default(); RING]),
        }
    }

    /// The objective being tracked.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Record one finished request at the current process time.
    pub fn record(&self, latency_us: u64, ok: bool) {
        self.record_at(now_us() / 1_000_000, latency_us, ok);
    }

    /// Record one finished request at an explicit second — the
    /// deterministic entry point tests drive directly.
    pub fn record_at(&self, now_s: u64, latency_us: u64, ok: bool) {
        let tag = now_s / BUCKET_S;
        let mut ring = self.ring.lock().expect("slo ring poisoned");
        let bucket = &mut ring[(tag as usize) % RING];
        if bucket.tag != tag {
            *bucket = Bucket {
                tag,
                ..Bucket::default()
            };
        }
        bucket.requests += 1;
        if !ok {
            bucket.errors += 1;
        }
        if latency_us > self.spec.latency_target_us {
            bucket.slow += 1;
        }
    }

    /// Burn rates over every window in [`BURN_WINDOWS`] at the current
    /// process time.
    pub fn burn_rates(&self) -> Vec<BurnRateSample> {
        self.burn_rates_at(now_us() / 1_000_000)
    }

    /// Burn rates at an explicit second (deterministic for tests). A
    /// window covers the half-open span `(now_s - window, now_s]` in
    /// bucket granularity.
    pub fn burn_rates_at(&self, now_s: u64) -> Vec<BurnRateSample> {
        let now_tag = now_s / BUCKET_S;
        let ring = self.ring.lock().expect("slo ring poisoned");
        BURN_WINDOWS
            .iter()
            .map(|&(label, window_s)| {
                let window_buckets = (window_s / BUCKET_S).max(1);
                let oldest_tag = (now_tag + 1).saturating_sub(window_buckets);
                let (mut requests, mut errors, mut slow) = (0u64, 0u64, 0u64);
                for b in ring.iter() {
                    if b.requests > 0 && b.tag >= oldest_tag && b.tag <= now_tag {
                        requests += b.requests;
                        errors += b.errors;
                        slow += b.slow;
                    }
                }
                let burn = |bad: u64, budget: f64| {
                    if requests == 0 || budget <= 0.0 {
                        0.0
                    } else {
                        (bad as f64 / requests as f64) / budget
                    }
                };
                BurnRateSample {
                    window: label.to_string(),
                    requests,
                    errors,
                    slow,
                    availability_burn: burn(errors, 1.0 - self.spec.availability),
                    latency_burn: burn(slow, 1.0 - self.spec.latency_goal),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_is_one_when_budget_is_spent_exactly() {
        let t = SloTracker::new(SloSpec {
            endpoint: "estimate",
            availability: 0.999,
            latency_target_us: 1_000,
            latency_goal: 0.99,
        });
        // 1000 requests, 1 error: error rate 0.1% == the 99.9% budget.
        for i in 0..1000 {
            t.record_at(100, 10, i != 0);
        }
        let rates = t.burn_rates_at(100);
        assert_eq!(rates.len(), BURN_WINDOWS.len());
        let five = &rates[0];
        assert_eq!(five.window, "5m");
        assert_eq!(five.requests, 1000);
        assert_eq!(five.errors, 1);
        assert!((five.availability_burn - 1.0).abs() < 1e-9);
        assert!((five.latency_burn - 0.0).abs() < 1e-9);
    }

    #[test]
    fn latency_burn_counts_requests_over_target() {
        let t = SloTracker::new(SloSpec {
            endpoint: "flow",
            availability: 0.999,
            latency_target_us: 1_000,
            latency_goal: 0.99,
        });
        // 100 requests, 2 slower than 1 ms: 2% slow over a 1% budget.
        for i in 0..100 {
            let latency = if i < 2 { 5_000 } else { 10 };
            t.record_at(50, latency, true);
        }
        let rates = t.burn_rates_at(50);
        assert!((rates[0].latency_burn - 2.0).abs() < 1e-9);
        assert_eq!(rates[0].slow, 2);
    }

    #[test]
    fn short_window_forgets_what_the_long_window_remembers() {
        let t = SloTracker::new(SloSpec::new("flow", 1_000));
        // Errors at t=0, then quiet; read at t=600 (10 min later).
        for _ in 0..10 {
            t.record_at(0, 10, false);
        }
        for _ in 0..10 {
            t.record_at(590, 10, true);
        }
        let rates = t.burn_rates_at(599);
        let five = &rates[0];
        let hour = &rates[1];
        assert_eq!(five.window, "5m");
        assert_eq!(
            five.requests, 10,
            "5m window sees only the recent ok traffic"
        );
        assert_eq!(five.errors, 0);
        assert!(five.availability_burn == 0.0);
        assert_eq!(hour.requests, 20, "1h window still sees the error burst");
        assert_eq!(hour.errors, 10);
        assert!(hour.availability_burn > 0.0);
    }

    #[test]
    fn stale_buckets_are_reset_when_the_ring_wraps() {
        let t = SloTracker::new(SloSpec::new("estimate", 1_000));
        t.record_at(0, 10, false);
        // Exactly one ring revolution later the same slot is reused; the
        // old error must not leak into the new epoch.
        let wrap_s = BURN_WINDOWS[1].1;
        t.record_at(wrap_s, 10, true);
        let rates = t.burn_rates_at(wrap_s);
        assert_eq!(rates[1].requests, 1);
        assert_eq!(rates[1].errors, 0);
    }

    #[test]
    fn empty_tracker_reports_zero_burn() {
        let t = SloTracker::new(SloSpec::new("stats", 1_000));
        for r in t.burn_rates_at(1_000) {
            assert_eq!(r.requests, 0);
            assert_eq!(r.availability_burn, 0.0);
            assert_eq!(r.latency_burn, 0.0);
        }
    }
}
