//! Request-scoped tracing and the tail-sampling slowlog.
//!
//! Aggregate metrics say *how fast the server is*; they cannot explain
//! *why one request was slow*. This module closes that gap:
//!
//! * [`RequestCtx`] — a per-request trace context: a non-zero trace id
//!   plus a [`PhaseBudget`] (per-phase latency budgets derived from the
//!   request deadline);
//! * [`RequestRecorder`] — a [`Recorder`] the serving layer threads
//!   through the flow (via `RwFlowConfig.obs`), so every span, counter
//!   and observation the pipeline records while working on a request is
//!   tagged with the owning request's trace id, forwarded to the shared
//!   process-wide sink, *and* buffered as the request's own span tree;
//! * [`Slowlog`] — a tail-sampling ring buffer that retains the full
//!   span tree only for requests worth explaining: slower than a
//!   configurable threshold, errored, shed, degraded, or past their
//!   deadline. The keep/drop decision and the fast path for healthy
//!   requests touch only atomics; the ring lock is taken only when a
//!   tree is actually retained.

use crate::phase::Phase;
use crate::record::{Recorder, SpanRecord, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a request ended, from the slowlog's point of view. Anything but
/// [`RequestOutcome::Ok`] is tail-sampled regardless of latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RequestOutcome {
    /// Handled successfully within its deadline.
    Ok,
    /// Answered with an error reply.
    Error,
    /// Refused at the accept queue (load shedding).
    Shed,
    /// Handled, but a dependency degraded while serving it (e.g. the
    /// persistent store demoted to memory-only mode).
    Degraded,
    /// The handler finished after the request deadline had expired.
    DeadlineExpired,
}

impl RequestOutcome {
    /// Stable lower-case label (`ok`, `error`, `shed`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Ok => "ok",
            RequestOutcome::Error => "error",
            RequestOutcome::Shed => "shed",
            RequestOutcome::Degraded => "degraded",
            RequestOutcome::DeadlineExpired => "deadline_expired",
        }
    }

    /// Whether the request was healthy (only [`RequestOutcome::Ok`] is).
    pub fn is_ok(&self) -> bool {
        matches!(self, RequestOutcome::Ok)
    }
}

/// Per-phase latency budgets in microseconds; `0` means unbudgeted. A
/// request exceeding a phase's budget has that phase flagged in its
/// [`SlowlogEntry::over_budget_phases`], pointing straight at the stage
/// that spent the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBudget {
    budget_us: [u64; Phase::ALL.len()],
}

impl Default for PhaseBudget {
    fn default() -> PhaseBudget {
        PhaseBudget::unlimited()
    }
}

impl PhaseBudget {
    /// No budget on any phase.
    pub fn unlimited() -> PhaseBudget {
        PhaseBudget {
            budget_us: [0; Phase::ALL.len()],
        }
    }

    /// Give every phase the same budget — the natural derivation from a
    /// request deadline: no single phase may eat the whole deadline.
    pub fn uniform(budget_us: u64) -> PhaseBudget {
        PhaseBudget {
            budget_us: [budget_us; Phase::ALL.len()],
        }
    }

    /// Set one phase's budget (µs, `0` = unbudgeted).
    pub fn set(&mut self, phase: Phase, budget_us: u64) {
        self.budget_us[phase.index()] = budget_us;
    }

    /// One phase's budget (µs, `0` = unbudgeted).
    pub fn get(&self, phase: Phase) -> u64 {
        self.budget_us[phase.index()]
    }
}

/// A request's trace context: minted in the serve acceptor, carried
/// through the worker pool, and stamped onto every [`TraceEvent`] the
/// pipeline emits while working on the request.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// The request's trace id. Non-zero; `0` is reserved for untraced
    /// background work.
    pub trace_id: u64,
    /// The endpoint serving the request (`estimate`, `flow`, ...).
    pub endpoint: &'static str,
    /// Per-phase latency budgets.
    pub budget: PhaseBudget,
}

impl RequestCtx {
    /// A context with an unlimited budget.
    pub fn new(trace_id: u64, endpoint: &'static str) -> RequestCtx {
        RequestCtx {
            trace_id,
            endpoint,
            budget: PhaseBudget::unlimited(),
        }
    }

    /// A context whose every phase is budgeted at `budget_us`.
    pub fn with_uniform_budget(
        trace_id: u64,
        endpoint: &'static str,
        budget_us: u64,
    ) -> RequestCtx {
        RequestCtx {
            trace_id,
            endpoint,
            budget: PhaseBudget::uniform(budget_us),
        }
    }
}

/// A monotonically increasing trace-id source. Ids start at 1, so `0`
/// stays free to mean "untraced".
#[derive(Debug)]
pub struct TraceIdGen(AtomicU64);

impl Default for TraceIdGen {
    fn default() -> TraceIdGen {
        TraceIdGen::new()
    }
}

impl TraceIdGen {
    /// A generator whose first id is 1.
    pub fn new() -> TraceIdGen {
        TraceIdGen(AtomicU64::new(1))
    }

    /// Mint the next trace id.
    pub fn mint(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// The recorder a request hands to the pipeline: tags every event with
/// the request's trace id, forwards the tagged event to the shared
/// process-wide sink (so aggregate metrics still see everything), and
/// buffers the events as the request's own span tree for the slowlog.
///
/// Thread-safe: `flow` records from rayon workers, so the buffer sits
/// behind a mutex and per-phase time in atomics.
pub struct RequestRecorder<'a> {
    inner: &'a dyn Recorder,
    ctx: RequestCtx,
    events: Mutex<Vec<TraceEvent>>,
    phase_us: [AtomicU64; Phase::ALL.len()],
}

impl<'a> RequestRecorder<'a> {
    /// Wrap the shared sink for one request.
    pub fn new(inner: &'a dyn Recorder, ctx: RequestCtx) -> RequestRecorder<'a> {
        RequestRecorder {
            inner,
            ctx,
            events: Mutex::new(Vec::new()),
            phase_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The request's trace context.
    pub fn ctx(&self) -> &RequestCtx {
        &self.ctx
    }

    /// Total span time recorded under `phase` so far (µs).
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phase_us[phase.index()].load(Ordering::Relaxed)
    }

    /// Total recorded under a counter key within this request — lets the
    /// serving layer classify a request (e.g. "did a store write fail
    /// while serving it?") from its own trace instead of racy globals.
    pub fn counter_total(&self, key: &str) -> u64 {
        self.events
            .lock()
            .expect("request trace poisoned")
            .iter()
            .map(|e| match e {
                TraceEvent::Count { key: k, delta, .. } if k == key => *delta,
                _ => 0,
            })
            .sum()
    }

    /// Close the request: produce the slowlog entry holding its full
    /// span tree, wall latency, outcome, and any phases that blew their
    /// budget.
    pub fn finish(self, latency_us: u64, outcome: RequestOutcome) -> SlowlogEntry {
        let over_budget_phases = Phase::ALL
            .iter()
            .copied()
            .filter(|&p| {
                let budget = self.ctx.budget.get(p);
                budget > 0 && self.phase_us(p) > budget
            })
            .collect();
        SlowlogEntry {
            trace_id: self.ctx.trace_id,
            endpoint: self.ctx.endpoint.to_string(),
            latency_us,
            outcome,
            over_budget_phases,
            events: self.events.into_inner().expect("request trace poisoned"),
        }
    }
}

impl Recorder for RequestRecorder<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, span: &SpanRecord) {
        let mut tagged = span.clone();
        tagged.trace_id = self.ctx.trace_id;
        self.phase_us[span.phase.index()].fetch_add(span.duration_us, Ordering::Relaxed);
        self.inner.record_span(&tagged);
        self.events
            .lock()
            .expect("request trace poisoned")
            .push(TraceEvent::Span(tagged));
    }

    fn count(&self, key: &str, delta: u64) {
        self.inner.count(key, delta);
        self.events
            .lock()
            .expect("request trace poisoned")
            .push(TraceEvent::Count {
                trace_id: self.ctx.trace_id,
                key: key.to_string(),
                delta,
            });
    }

    fn observe(&self, key: &str, value: f64) {
        self.inner.observe(key, value);
        self.events
            .lock()
            .expect("request trace poisoned")
            .push(TraceEvent::Observe {
                trace_id: self.ctx.trace_id,
                key: key.to_string(),
                value,
            });
    }
}

/// One retained request: identity, latency, outcome, budget verdict and
/// the full span tree. What the `slowlog` endpoint ships.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlowlogEntry {
    /// The request's trace id.
    pub trace_id: u64,
    /// The endpoint that served it.
    pub endpoint: String,
    /// Wall latency of the request, microseconds.
    pub latency_us: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// Phases whose span time exceeded the request's budget.
    pub over_budget_phases: Vec<Phase>,
    /// Every trace event recorded while serving the request.
    pub events: Vec<TraceEvent>,
}

impl SlowlogEntry {
    /// Spans in the retained tree (events that are spans).
    pub fn span_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span(_)))
            .count()
    }
}

/// The tail-sampling slowlog: a bounded ring of [`SlowlogEntry`] values
/// retaining only requests that were slow (`latency >= threshold`),
/// errored, shed, degraded, or deadline-expired. Healthy fast requests
/// cost two atomic increments; the ring mutex is taken only on retain
/// and on snapshot.
#[derive(Debug)]
pub struct Slowlog {
    capacity: usize,
    threshold_us: AtomicU64,
    considered: AtomicU64,
    retained: AtomicU64,
    evicted: AtomicU64,
    ring: Mutex<VecDeque<SlowlogEntry>>,
}

impl Slowlog {
    /// A slowlog keeping at most `capacity` entries, retaining requests
    /// at or above `threshold_us` (or with a non-ok outcome).
    pub fn new(capacity: usize, threshold_us: u64) -> Slowlog {
        Slowlog {
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(threshold_us),
            considered: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The current slow threshold (µs).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Change the slow threshold (µs) at runtime.
    pub fn set_threshold_us(&self, threshold_us: u64) {
        self.threshold_us.store(threshold_us, Ordering::Relaxed);
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a request with this latency and outcome would be retained.
    /// Atomics only — callers on the hot path may check this before even
    /// building an entry.
    pub fn wants(&self, latency_us: u64, outcome: RequestOutcome) -> bool {
        !outcome.is_ok() || latency_us >= self.threshold_us()
    }

    /// Offer a finished request. Retains it iff [`Slowlog::wants`] its
    /// latency/outcome; evicts the oldest entry when full.
    pub fn offer(&self, entry: SlowlogEntry) {
        self.considered.fetch_add(1, Ordering::Relaxed);
        if !self.wants(entry.latency_us, entry.outcome) {
            return;
        }
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("slowlog poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// Requests offered so far (retained or not).
    pub fn considered(&self) -> u64 {
        self.considered.load(Ordering::Relaxed)
    }

    /// Requests retained so far (including since-evicted ones).
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Retained entries evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Currently retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slowlog poisoned").len()
    }

    /// Whether nothing is currently retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `limit` entries, newest first (`0` = all).
    pub fn snapshot(&self, limit: usize) -> Vec<SlowlogEntry> {
        let ring = self.ring.lock().expect("slowlog poisoned");
        let take = if limit == 0 { ring.len() } else { limit };
        ring.iter().rev().take(take).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{noop, span};
    use crate::sinks::AggregatingSink;

    fn entry(trace_id: u64, latency_us: u64, outcome: RequestOutcome) -> SlowlogEntry {
        SlowlogEntry {
            trace_id,
            endpoint: "estimate".into(),
            latency_us,
            outcome,
            over_budget_phases: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn request_recorder_tags_and_buffers_every_event() {
        let sink = AggregatingSink::new();
        let rec = RequestRecorder::new(&sink, RequestCtx::new(7, "flow"));
        {
            let mut s = span(&rec, Phase::Place, "m0");
            s.field("cf", 1.5);
        }
        rec.count("cache.hit", 2);
        rec.observe("flow.cf.placed", 1.2);
        // Forwarded to the shared sink...
        assert_eq!(sink.phase_spans(Phase::Place), 1);
        assert_eq!(sink.counter("cache.hit"), 2);
        // ...and buffered with the trace id stamped on every event.
        let entry = rec.finish(100, RequestOutcome::Ok);
        assert_eq!(entry.trace_id, 7);
        assert_eq!(entry.events.len(), 3);
        assert!(entry.events.iter().all(|e| e.trace_id() == 7));
        assert_eq!(entry.span_count(), 1);
    }

    #[test]
    fn over_budget_phases_are_flagged() {
        let mut ctx = RequestCtx::new(3, "flow");
        ctx.budget.set(Phase::Place, 1); // 1 µs: any real span blows it
        ctx.budget.set(Phase::Route, 10_000_000);
        let rec = RequestRecorder::new(noop(), ctx);
        rec.record_span(&SpanRecord {
            trace_id: 0,
            phase: Phase::Place,
            name: "m0".into(),
            start_us: 0,
            duration_us: 50,
            fields: Vec::new(),
        });
        rec.record_span(&SpanRecord {
            trace_id: 0,
            phase: Phase::Route,
            name: "m0".into(),
            start_us: 50,
            duration_us: 50,
            fields: Vec::new(),
        });
        let entry = rec.finish(100, RequestOutcome::Ok);
        assert_eq!(entry.over_budget_phases, vec![Phase::Place]);
    }

    #[test]
    fn slowlog_retains_exactly_slow_or_unhealthy_requests() {
        let log = Slowlog::new(16, 1_000);
        log.offer(entry(1, 10, RequestOutcome::Ok)); // fast + ok: dropped
        log.offer(entry(2, 5_000, RequestOutcome::Ok)); // slow: kept
        log.offer(entry(3, 10, RequestOutcome::Error)); // errored: kept
        log.offer(entry(4, 10, RequestOutcome::Shed)); // shed: kept
        log.offer(entry(5, 10, RequestOutcome::Degraded)); // degraded: kept
        log.offer(entry(6, 1_000, RequestOutcome::Ok)); // exactly at threshold: kept
        assert_eq!(log.considered(), 6);
        assert_eq!(log.retained(), 5);
        assert_eq!(log.len(), 5);
        let ids: Vec<u64> = log.snapshot(0).iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 5, 4, 3, 2], "newest first, trace 1 dropped");
    }

    #[test]
    fn slowlog_ring_evicts_oldest_and_limit_caps_snapshot() {
        let log = Slowlog::new(3, 0); // threshold 0: retain everything
        for id in 1..=5 {
            log.offer(entry(id, 10, RequestOutcome::Ok));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let ids: Vec<u64> = log.snapshot(0).iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![5, 4, 3]);
        assert_eq!(log.snapshot(2).len(), 2);
    }

    #[test]
    fn threshold_is_runtime_adjustable() {
        let log = Slowlog::new(4, u64::MAX);
        assert!(!log.wants(1_000_000, RequestOutcome::Ok));
        log.set_threshold_us(500);
        assert!(log.wants(1_000_000, RequestOutcome::Ok));
        assert!(log.wants(0, RequestOutcome::DeadlineExpired));
    }

    #[test]
    fn trace_ids_start_at_one_and_increase() {
        let gen = TraceIdGen::new();
        assert_eq!(gen.mint(), 1);
        assert_eq!(gen.mint(), 2);
    }

    #[test]
    fn slowlog_entry_serde_round_trip() {
        let mut e = entry(9, 2_000, RequestOutcome::DeadlineExpired);
        e.over_budget_phases = vec![Phase::Place, Phase::Stitch];
        e.events = vec![TraceEvent::Count {
            trace_id: 9,
            key: "cache.miss".into(),
            delta: 1,
        }];
        let json = serde_json::to_string(&e).unwrap();
        let back: SlowlogEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
