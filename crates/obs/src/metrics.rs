//! Dependency-free metric primitives: counters, bounded histograms, and
//! the per-endpoint request metrics the serving layer aggregates. All
//! plain `AtomicU64`, so recording never takes a lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive, microseconds) of the latency histogram
/// buckets: 100 µs, 1 ms, 10 ms, 100 ms, 1 s, 10 s, and everything above.
pub const LATENCY_BUCKETS_US: [u64; 7] =
    [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, u64::MAX];

/// Fine-grained latency bounds (inclusive, microseconds) for quantile
/// estimation: a 1-2-5 ladder from 10 µs to 1 minute. The decade buckets
/// of [`LATENCY_BUCKETS_US`] are too coarse for interpolated p99/p999 —
/// the loadgen harness and the per-phase report quantiles use these.
pub const FINE_LATENCY_BUCKETS_US: [u64; 22] = [
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    30_000_000,
    60_000_000,
    u64::MAX,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` values. Bucket `i` counts values
/// `v <= BOUNDS[i]`; the last bound must be `u64::MAX` so every value
/// lands somewhere.
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    bounds: [u64; N],
    buckets: [AtomicU64; N],
    count: AtomicU64,
    sum: AtomicU64,
}

impl<const N: usize> Histogram<N> {
    /// A histogram with the given inclusive upper bounds. The bounds must
    /// be strictly increasing and end at `u64::MAX`.
    pub fn new(bounds: [u64; N]) -> Histogram<N> {
        assert!(N > 0, "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        assert_eq!(bounds[N - 1], u64::MAX, "last bound must catch everything");
        Histogram {
            bounds,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The inclusive upper bounds.
    pub fn bounds(&self) -> &[u64; N] {
        &self.bounds
    }

    /// Record one value. A value exactly on a bound lands in that bound's
    /// bucket (bounds are inclusive).
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // The last bound is u64::MAX, so the search cannot miss.
        let idx = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .expect("last bound is u64::MAX");
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative).
    pub fn buckets(&self) -> [u64; N] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Bucket-interpolated quantile estimate (see [`quantile_from_buckets`]).
    /// `None` until at least one value was recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.bounds, &self.buckets(), q)
    }
}

/// Estimate the `q`-quantile (`0.0 ..= 1.0`) of a bucketed histogram by
/// linear interpolation inside the bucket holding the target rank, the
/// same estimate Prometheus' `histogram_quantile` computes. The lower
/// edge of bucket `i` is `bounds[i - 1]` (0 for the first); values in the
/// catch-all bucket (`u64::MAX` bound) are clamped to its lower edge, so
/// the estimate never invents an upper bound. Returns `None` for an empty
/// histogram.
pub fn quantile_from_buckets(bounds: &[u64], buckets: &[u64], q: f64) -> Option<u64> {
    debug_assert_eq!(bounds.len(), buckets.len());
    let count: u64 = buckets.iter().sum();
    if count == 0 || bounds.len() != buckets.len() {
        return None;
    }
    let target = q.clamp(0.0, 1.0) * count as f64;
    let mut cum = 0u64;
    for (i, &in_bucket) in buckets.iter().enumerate() {
        let before = cum;
        cum += in_bucket;
        if (cum as f64) < target || in_bucket == 0 {
            continue;
        }
        let lo = if i == 0 { 0 } else { bounds[i - 1] };
        if bounds[i] == u64::MAX {
            return Some(lo);
        }
        let fraction = ((target - before as f64) / in_bucket as f64).clamp(0.0, 1.0);
        return Some(lo + ((bounds[i] - lo) as f64 * fraction).round() as u64);
    }
    // q == 0.0 with all mass above, or rounding: fall back to the lower
    // edge of the first non-empty bucket.
    let i = buckets.iter().position(|&b| b > 0)?;
    Some(if i == 0 { 0 } else { bounds[i - 1] })
}

/// Counters for one serving endpoint: request/error totals and a latency
/// histogram over [`LATENCY_BUCKETS_US`].
pub struct EndpointMetrics {
    requests: Counter,
    errors: Counter,
    latency: Histogram<{ LATENCY_BUCKETS_US.len() }>,
}

impl Default for EndpointMetrics {
    fn default() -> EndpointMetrics {
        EndpointMetrics {
            requests: Counter::new(),
            errors: Counter::new(),
            latency: Histogram::new(LATENCY_BUCKETS_US),
        }
    }
}

impl EndpointMetrics {
    /// Record one handled request.
    pub fn record(&self, micros: u64, ok: bool) {
        self.requests.inc();
        if !ok {
            self.errors.inc();
        }
        self.latency.observe(micros);
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> EndpointSnapshot {
        EndpointSnapshot {
            requests: self.requests.get(),
            errors: self.errors.get(),
            total_micros: self.latency.sum(),
            p50_us: self.latency.quantile(0.50).unwrap_or(0),
            p99_us: self.latency.quantile(0.99).unwrap_or(0),
            p999_us: self.latency.quantile(0.999).unwrap_or(0),
            bucket_bounds_us: LATENCY_BUCKETS_US.to_vec(),
            buckets: self.latency.buckets().to_vec(),
        }
    }
}

/// Per-endpoint request counters and latency histogram, as shipped in the
/// serve layer's `stats` reply.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EndpointSnapshot {
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sum of handling times, microseconds.
    pub total_micros: u64,
    /// Bucket-interpolated median latency, microseconds (0 when empty).
    pub p50_us: u64,
    /// Bucket-interpolated 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Bucket-interpolated 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Inclusive upper bounds of the latency buckets, microseconds
    /// (`u64::MAX` for the catch-all); same length as `buckets`, so the
    /// histogram is self-describing.
    pub bucket_bounds_us: Vec<u64>,
    /// Latency histogram; bucket `i` counts requests that finished within
    /// `bucket_bounds_us[i]` microseconds.
    pub buckets: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fills_the_right_bucket() {
        let m = EndpointMetrics::default();
        m.record(50, true); // <= 100 µs
        m.record(700, true); // <= 1 ms
        m.record(2_000_000, false); // <= 10 s
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.total_micros, 50 + 700 + 2_000_000);
        assert_eq!(s.bucket_bounds_us, LATENCY_BUCKETS_US.to_vec());
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[5], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn value_exactly_on_a_bucket_bound_lands_in_that_bucket() {
        // Bounds are inclusive: 100 µs goes into the 100 µs bucket, and
        // 101 µs into the next one.
        let h = Histogram::new(LATENCY_BUCKETS_US);
        for &bound in &LATENCY_BUCKETS_US[..LATENCY_BUCKETS_US.len() - 1] {
            h.observe(bound);
            h.observe(bound + 1);
        }
        h.observe(u64::MAX);
        let b = h.buckets();
        assert_eq!(b[0], 1, "100 lands in the first bucket");
        for (i, &count) in b
            .iter()
            .enumerate()
            .take(LATENCY_BUCKETS_US.len() - 1)
            .skip(1)
        {
            // Each middle bucket gets its own bound plus the previous
            // bound's +1 spill-over.
            assert_eq!(count, 2, "bucket {i}");
        }
        assert_eq!(b[LATENCY_BUCKETS_US.len() - 1], 2, "catch-all");
        assert_eq!(h.count(), 2 * LATENCY_BUCKETS_US.len() as u64 - 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new([10, 10, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "last bound")]
    fn histogram_rejects_a_finite_last_bound() {
        let _ = Histogram::new([10, 20]);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let m = EndpointMetrics::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        m.record(10, true);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().requests, 800);
        assert_eq!(m.snapshot().buckets[0], 800);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 values spread uniformly across the first bucket's range
        // (bounds 0..=100): the interpolated median sits mid-bucket.
        let h = Histogram::new([100, 1_000, u64::MAX]);
        for _ in 0..100 {
            h.observe(50);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
        // Mass split 90/10 across two buckets: p99 lands 90% of the way
        // through the second bucket: 100 + 0.9 * 900 = 910.
        let h = Histogram::new([100, 1_000, u64::MAX]);
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(500);
        }
        assert_eq!(h.quantile(0.99), Some(910));
        // Catch-all mass clamps to the last finite bound.
        let h = Histogram::new([100, u64::MAX]);
        h.observe(u64::MAX - 1);
        assert_eq!(h.quantile(0.99), Some(100));
        // Empty histogram has no quantiles.
        let h = Histogram::new([100, u64::MAX]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn snapshot_carries_interpolated_quantiles() {
        let m = EndpointMetrics::default();
        for _ in 0..100 {
            m.record(50, true);
        }
        let s = m.snapshot();
        assert_eq!(s.p50_us, 50);
        assert!(s.p99_us >= s.p50_us);
        assert!(s.p999_us >= s.p99_us);
    }

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let m = EndpointMetrics::default();
        m.record(150, true);
        let s = m.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: EndpointSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
