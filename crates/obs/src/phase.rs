//! The pipeline phases every span is labelled with.

/// One phase of the pre-implementation pipeline (plus the persistence
/// layer). Every [`crate::Span`]
/// carries exactly one phase label, so per-phase time/attempt breakdowns
/// (the `tms report` table, the serve `stats` response) never need to
/// parse free-form span names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Phase {
    /// Netlist synthesis / statistics extraction.
    Synth,
    /// Slice packing (control sets, carry shapes, M-type).
    Pack,
    /// PBlock generation + detailed placement (the CF search loop).
    Place,
    /// Global routing of the stitched design.
    Route,
    /// Simulated-annealing macro stitching.
    Stitch,
    /// Timing estimation and CF prediction.
    Estimate,
    /// Implementation-cache lookups and splices.
    Cache,
    /// Persistent macro-store appends, compactions and recovery.
    Store,
    /// Integrity verification: checksum checks, legality audits, scrubs.
    Verify,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 9] = [
        Phase::Synth,
        Phase::Pack,
        Phase::Place,
        Phase::Route,
        Phase::Stitch,
        Phase::Estimate,
        Phase::Cache,
        Phase::Store,
        Phase::Verify,
    ];

    /// Stable lowercase label (`synth`, `pack`, ...), used in traces,
    /// Prometheus labels and report tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Synth => "synth",
            Phase::Pack => "pack",
            Phase::Place => "place",
            Phase::Route => "route",
            Phase::Stitch => "stitch",
            Phase::Estimate => "estimate",
            Phase::Cache => "cache",
            Phase::Store => "store",
            Phase::Verify => "verify",
        }
    }

    /// Inverse of [`Phase::label`].
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Dense index into [`Phase::ALL`] (for per-phase atomics).
    pub fn index(self) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every phase is in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
            assert_eq!(Phase::ALL[p.index()], p);
        }
        assert_eq!(Phase::from_label("nope"), None);
    }

    #[test]
    fn serde_round_trip() {
        for p in Phase::ALL {
            let json = serde_json::to_string(&p).unwrap();
            let back: Phase = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
    }
}
