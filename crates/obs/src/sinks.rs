//! Concrete recorders: the JSONL file sink and the in-memory aggregator.

use crate::phase::Phase;
use crate::record::{Recorder, SpanRecord, TraceEvent};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A recorder writing one JSON document per line — the experiment-run
/// trace format consumed by `tms report` and [`read_trace`].
pub struct JsonlSink {
    out: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncate) a trace file at `path`.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("jsonl sink poisoned").flush()
    }

    fn write_event(&self, event: &TraceEvent) {
        if let Ok(mut line) = serde_json::to_string(event) {
            line.push('\n');
            let mut out = self.out.lock().expect("jsonl sink poisoned");
            let _ = out.write_all(line.as_bytes());
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Recorder for JsonlSink {
    fn record_span(&self, span: &SpanRecord) {
        self.write_event(&TraceEvent::Span(span.clone()));
    }

    fn count(&self, key: &str, delta: u64) {
        self.write_event(&TraceEvent::Count {
            trace_id: 0,
            key: key.to_string(),
            delta,
        });
    }

    fn observe(&self, key: &str, value: f64) {
        self.write_event(&TraceEvent::Observe {
            trace_id: 0,
            key: key.to_string(),
            value,
        });
    }
}

/// Parse a JSONL trace written by [`JsonlSink`]. Blank lines are skipped;
/// a malformed line is an error (traces are machine-written).
pub fn read_trace(path: &Path) -> io::Result<Vec<TraceEvent>> {
    let file = std::fs::File::open(path)?;
    let mut events = Vec::new();
    for (n, line) in io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", n + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Feed a parsed trace back into a recorder — e.g. rebuild an
/// [`AggregatingSink`] from a JSONL file to check totals.
pub fn replay(events: &[TraceEvent], recorder: &dyn Recorder) {
    for event in events {
        match event {
            TraceEvent::Span(s) => recorder.record_span(s),
            TraceEvent::Count { key, delta, .. } => recorder.count(key, *delta),
            TraceEvent::Observe { key, value, .. } => recorder.observe(key, *value),
        }
    }
}

/// Per-phase span totals of an [`AggregatingSink`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSnapshot {
    /// The phase.
    pub phase: Phase,
    /// Spans recorded under it.
    pub spans: u64,
    /// Summed span durations, microseconds.
    pub total_us: u64,
}

/// One observation series of an [`AggregatingSink`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObservationSnapshot {
    /// Observation key.
    pub key: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// A consistent-enough snapshot of an [`AggregatingSink`] — what the
/// serve layer embeds in its `stats` reply and renders as Prometheus
/// series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObsSnapshot {
    /// Per-phase span totals (only phases with at least one span).
    pub phases: Vec<PhaseSnapshot>,
    /// Counter totals, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Observation series, sorted by key.
    pub observations: Vec<ObservationSnapshot>,
}

impl ObsSnapshot {
    /// Totals of one phase, if any span was recorded under it.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// A counter's total (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |&(_, v)| v)
    }
}

/// An in-memory aggregating recorder: lock-free per-phase span totals
/// (plain atomics) plus mutex-guarded counter and observation maps.
#[derive(Default)]
pub struct AggregatingSink {
    spans: [AtomicU64; Phase::ALL.len()],
    total_us: [AtomicU64; Phase::ALL.len()],
    counters: Mutex<BTreeMap<String, u64>>,
    observations: Mutex<BTreeMap<String, (u64, f64)>>,
}

impl AggregatingSink {
    /// An empty sink.
    pub fn new() -> AggregatingSink {
        AggregatingSink::default()
    }

    /// Spans recorded under `phase`.
    pub fn phase_spans(&self, phase: Phase) -> u64 {
        self.spans[phase.index()].load(Ordering::Relaxed)
    }

    /// Summed durations (µs) of the spans recorded under `phase`.
    pub fn phase_total_us(&self, phase: Phase) -> u64 {
        self.total_us[phase.index()].load(Ordering::Relaxed)
    }

    /// Summed durations (µs) across every phase.
    pub fn total_us(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_total_us(p)).sum()
    }

    /// A counter's total (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter map poisoned")
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// `(count, sum)` of an observation series, if any value was recorded.
    pub fn observation(&self, key: &str) -> Option<(u64, f64)> {
        self.observations
            .lock()
            .expect("observation map poisoned")
            .get(key)
            .copied()
    }

    /// Snapshot every series for reporting.
    pub fn snapshot(&self) -> ObsSnapshot {
        let phases = Phase::ALL
            .iter()
            .filter_map(|&p| {
                let spans = self.phase_spans(p);
                (spans > 0).then(|| PhaseSnapshot {
                    phase: p,
                    spans,
                    total_us: self.phase_total_us(p),
                })
            })
            .collect();
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let observations = self
            .observations
            .lock()
            .expect("observation map poisoned")
            .iter()
            .map(|(k, &(count, sum))| ObservationSnapshot {
                key: k.clone(),
                count,
                sum,
            })
            .collect();
        ObsSnapshot {
            phases,
            counters,
            observations,
        }
    }
}

impl Recorder for AggregatingSink {
    fn record_span(&self, span: &SpanRecord) {
        let i = span.phase.index();
        self.spans[i].fetch_add(1, Ordering::Relaxed);
        self.total_us[i].fetch_add(span.duration_us, Ordering::Relaxed);
    }

    fn count(&self, key: &str, delta: u64) {
        let mut map = self.counters.lock().expect("counter map poisoned");
        match map.get_mut(key) {
            Some(v) => *v += delta,
            None => {
                map.insert(key.to_string(), delta);
            }
        }
    }

    fn observe(&self, key: &str, value: f64) {
        let mut map = self.observations.lock().expect("observation map poisoned");
        let entry = map.entry(key.to_string()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::span;

    #[test]
    fn aggregates_spans_counters_and_observations() {
        let sink = AggregatingSink::new();
        {
            let mut s = span(&sink, Phase::Place, "a");
            s.field("cf", 1.0);
        }
        span(&sink, Phase::Place, "b").finish();
        span(&sink, Phase::Stitch, "c").finish();
        sink.count("cache.hit", 2);
        sink.count("cache.hit", 3);
        sink.observe("cf", 1.5);
        sink.observe("cf", 2.5);
        assert_eq!(sink.phase_spans(Phase::Place), 2);
        assert_eq!(sink.phase_spans(Phase::Stitch), 1);
        assert_eq!(sink.phase_spans(Phase::Route), 0);
        assert_eq!(sink.counter("cache.hit"), 5);
        assert_eq!(sink.counter("cache.miss"), 0);
        assert_eq!(sink.observation("cf"), Some((2, 4.0)));
        let snap = sink.snapshot();
        assert_eq!(snap.phase(Phase::Place).unwrap().spans, 2);
        assert!(snap.phase(Phase::Route).is_none());
        assert_eq!(snap.counter("cache.hit"), 5);
        assert_eq!(snap.observations.len(), 1);
    }

    #[test]
    fn concurrent_span_recording_from_eight_threads() {
        // Satellite requirement: ≥ 8 threads recording spans, counters and
        // observations concurrently; nothing may be lost.
        let sink = AggregatingSink::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..200 {
                        let phase = Phase::ALL[(t + i) % Phase::ALL.len()];
                        let mut s = span(sink, phase, "worker");
                        s.field("i", i as f64);
                        drop(s);
                        sink.count("spans.done", 1);
                        sink.observe("value", 1.0);
                    }
                });
            }
        });
        let total: u64 = Phase::ALL.iter().map(|&p| sink.phase_spans(p)).sum();
        assert_eq!(total, 8 * 200);
        assert_eq!(sink.counter("spans.done"), 8 * 200);
        assert_eq!(sink.observation("value"), Some((8 * 200, 8.0 * 200.0)));
    }

    #[test]
    fn jsonl_round_trip_matches_the_aggregating_sink() {
        // Satellite requirement: write a trace, parse it back, and the
        // replayed totals must match a live aggregating sink fed the same
        // events.
        let path = std::env::temp_dir().join("tms_obs_roundtrip_test.jsonl");
        let live = AggregatingSink::new();
        {
            let jsonl = JsonlSink::create(&path).expect("create trace");
            for i in 0..20u64 {
                let phase = Phase::ALL[i as usize % Phase::ALL.len()];
                for obs in [&jsonl as &dyn Recorder, &live] {
                    let mut s = span(obs, phase, "m");
                    s.field("i", i as f64);
                    drop(s);
                    obs.count("cache.hit", i);
                    obs.observe("flow.cf.placed", 1.0 + i as f64 / 100.0);
                }
            }
            jsonl.flush().expect("flush");
        }
        let events = read_trace(&path).expect("read trace");
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 3 * 20);

        let replayed = AggregatingSink::new();
        replay(&events, &replayed);
        for p in Phase::ALL {
            assert_eq!(replayed.phase_spans(p), live.phase_spans(p), "{p:?}");
        }
        assert_eq!(replayed.counter("cache.hit"), live.counter("cache.hit"));
        let (rc, rs) = replayed.observation("flow.cf.placed").unwrap();
        let (lc, ls) = live.observation("flow.cf.placed").unwrap();
        assert_eq!(rc, lc);
        assert!((rs - ls).abs() < 1e-9);
        // Durations replay exactly (they are recorded, not re-measured).
        let replay_total: u64 = Phase::ALL.iter().map(|&p| replayed.phase_total_us(p)).sum();
        let event_total: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) => Some(s.duration_us),
                _ => None,
            })
            .sum();
        assert_eq!(replay_total, event_total);
    }

    #[test]
    fn read_trace_rejects_garbage() {
        let path = std::env::temp_dir().join("tms_obs_garbage_test.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = read_trace(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
