//! Prometheus text-format exposition (and a small parser for tests).
//!
//! The writer follows the text-format conventions: `# HELP`/`# TYPE`
//! headers, histogram series as cumulative `_bucket{le="..."}` samples
//! ending in `le="+Inf"`, plus `_sum` and `_count`.

use crate::metrics::EndpointSnapshot;
use crate::sinks::ObsSnapshot;
use std::collections::BTreeMap;

/// Incrementally builds a Prometheus text-format page.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

/// Turn a dotted counter/observation key into a metric-name segment:
/// every character outside `[a-zA-Z0-9_]` becomes `_`
/// (`place.fail.bram-column` → `place_fail_bram_column`).
pub fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl PromText {
    /// An empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emit the `# HELP` and `# TYPE` headers of one metric family.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push_str("\n# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                self.buf.push_str(v);
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        if value.fract() == 0.0 && value.abs() < 9.0e15 {
            self.buf.push_str(&format!("{}", value as i64));
        } else {
            self.buf.push_str(&format!("{value}"));
        }
        self.buf.push('\n');
    }

    /// Emit a full histogram family under `name`: cumulative
    /// `_bucket{le=...}` lines (the last bound renders as `+Inf`),
    /// then `_sum` and `_count`. `extra` labels are prepended to `le`.
    pub fn histogram(
        &mut self,
        name: &str,
        extra: &[(&str, &str)],
        bounds: &[u64],
        buckets: &[u64],
        sum: u64,
    ) {
        assert_eq!(bounds.len(), buckets.len());
        let mut cumulative = 0u64;
        for (&bound, &count) in bounds.iter().zip(buckets) {
            cumulative += count;
            let le = if bound == u64::MAX {
                "+Inf".to_string()
            } else {
                bound.to_string()
            };
            let mut labels: Vec<(&str, &str)> = extra.to_vec();
            labels.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &labels, cumulative as f64);
        }
        self.sample(&format!("{name}_sum"), extra, sum as f64);
        self.sample(&format!("{name}_count"), extra, cumulative as f64);
    }

    /// Emit one endpoint's request/error counters and latency histogram
    /// under the shared `tms_requests_total` / `tms_request_errors_total` /
    /// `tms_request_latency_us` families (headers are the caller's job —
    /// they are per-family, not per-endpoint).
    pub fn endpoint(&mut self, endpoint: &str, snap: &EndpointSnapshot) {
        self.sample(
            "tms_requests_total",
            &[("endpoint", endpoint)],
            snap.requests as f64,
        );
        self.sample(
            "tms_request_errors_total",
            &[("endpoint", endpoint)],
            snap.errors as f64,
        );
        self.histogram(
            "tms_request_latency_us",
            &[("endpoint", endpoint)],
            &snap.bucket_bounds_us,
            &snap.buckets,
            snap.total_micros,
        );
    }

    /// Emit an [`ObsSnapshot`]: per-phase span totals plus one counter
    /// family per counter key and a `_sum`/`_count` pair per observation
    /// key (keys sanitized via [`sanitize`] under a `tms_` prefix).
    pub fn obs_snapshot(&mut self, snap: &ObsSnapshot) {
        if !snap.phases.is_empty() {
            self.header(
                "tms_phase_spans_total",
                "Spans recorded per pipeline phase",
                "counter",
            );
            for p in &snap.phases {
                self.sample(
                    "tms_phase_spans_total",
                    &[("phase", p.phase.label())],
                    p.spans as f64,
                );
            }
            self.header(
                "tms_phase_time_us_total",
                "Summed span time per pipeline phase, microseconds",
                "counter",
            );
            for p in &snap.phases {
                self.sample(
                    "tms_phase_time_us_total",
                    &[("phase", p.phase.label())],
                    p.total_us as f64,
                );
            }
        }
        for (key, value) in &snap.counters {
            let name = format!("tms_{}_total", sanitize(key));
            self.header(&name, &format!("Flow counter {key}"), "counter");
            self.sample(&name, &[], *value as f64);
        }
        for obs in &snap.observations {
            let name = format!("tms_{}", sanitize(&obs.key));
            self.header(&name, &format!("Flow observation {}", obs.key), "summary");
            self.sample(&format!("{name}_sum"), &[], obs.sum);
            self.sample(&format!("{name}_count"), &[], obs.count as f64);
        }
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Parse a Prometheus text page into `full-sample-name → value`, where the
/// key includes the label set exactly as printed (e.g.
/// `tms_requests_total{endpoint="flow"}`). Comment and blank lines are
/// skipped; a malformed sample line is an error. Used by the integration
/// tests to cross-check the exposition against the `stats` JSON.
pub fn parse(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split = line
            .rfind(' ')
            .ok_or_else(|| format!("no value in {line:?}"))?;
        let (name, value) = line.split_at(split);
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad value in {line:?}: {e}"))?;
        samples.insert(name.trim().to_string(), value);
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EndpointMetrics;
    use crate::record::{span, Recorder};
    use crate::sinks::AggregatingSink;
    use crate::Phase;

    #[test]
    fn sanitize_flattens_separators() {
        assert_eq!(sanitize("place.fail.bram-column"), "place_fail_bram_column");
        assert_eq!(sanitize("cache.hit"), "cache_hit");
    }

    #[test]
    fn histogram_series_are_cumulative_and_end_at_inf() {
        let m = EndpointMetrics::default();
        m.record(50, true);
        m.record(60, true);
        m.record(700, false);
        let mut text = PromText::new();
        text.endpoint("estimate", &m.snapshot());
        let page = text.finish();
        let samples = parse(&page).unwrap();
        assert_eq!(
            samples["tms_requests_total{endpoint=\"estimate\"}"] as u64,
            3
        );
        assert_eq!(
            samples["tms_request_errors_total{endpoint=\"estimate\"}"] as u64,
            1
        );
        assert_eq!(
            samples["tms_request_latency_us_bucket{endpoint=\"estimate\",le=\"100\"}"] as u64,
            2
        );
        assert_eq!(
            samples["tms_request_latency_us_bucket{endpoint=\"estimate\",le=\"1000\"}"] as u64, 3,
            "buckets must be cumulative"
        );
        assert_eq!(
            samples["tms_request_latency_us_bucket{endpoint=\"estimate\",le=\"+Inf\"}"] as u64,
            3
        );
        assert_eq!(
            samples["tms_request_latency_us_sum{endpoint=\"estimate\"}"] as u64,
            810
        );
        assert_eq!(
            samples["tms_request_latency_us_count{endpoint=\"estimate\"}"] as u64,
            3
        );
    }

    #[test]
    fn obs_snapshot_renders_phases_counters_and_observations() {
        let sink = AggregatingSink::new();
        span(&sink, Phase::Place, "m").finish();
        span(&sink, Phase::Place, "n").finish();
        sink.count("place.fail.congestion", 4);
        sink.observe("flow.cf.placed", 1.5);
        sink.observe("flow.cf.placed", 2.0);
        let mut text = PromText::new();
        text.obs_snapshot(&sink.snapshot());
        let page = text.finish();
        let samples = parse(&page).unwrap();
        assert_eq!(samples["tms_phase_spans_total{phase=\"place\"}"] as u64, 2);
        assert!(samples.contains_key("tms_phase_time_us_total{phase=\"place\"}"));
        assert_eq!(samples["tms_place_fail_congestion_total"] as u64, 4);
        assert_eq!(samples["tms_flow_cf_placed_count"] as u64, 2);
        assert!((samples["tms_flow_cf_placed_sum"] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("just_a_name_no_value").is_err());
        assert!(parse("name not_a_number").is_err());
        assert!(parse("# HELP x y\n# TYPE x counter\nx 1\n").is_ok());
    }
}
