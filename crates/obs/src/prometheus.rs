//! Prometheus text-format exposition (and a small parser for tests).
//!
//! The writer follows the text-format conventions: `# HELP`/`# TYPE`
//! headers, histogram series as cumulative `_bucket{le="..."}` samples
//! ending in `le="+Inf"`, plus `_sum` and `_count`.

use crate::metrics::EndpointSnapshot;
use crate::sinks::ObsSnapshot;
use std::collections::BTreeMap;

/// Incrementally builds a Prometheus text-format page.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

/// Turn a dotted counter/observation key into a metric-name segment:
/// every character outside `[a-zA-Z0-9_]` becomes `_`
/// (`place.fail.bram-column` → `place_fail_bram_column`).
pub fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escape a label value per the text-format rules: backslash, double
/// quote and newline become `\\`, `\"` and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Append one sample line — the single formatting path shared by
/// [`PromText::sample`] and [`PromPage::render`], so a parsed page
/// re-renders bit-identically.
fn write_sample(buf: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    buf.push_str(name);
    if !labels.is_empty() {
        buf.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(k);
            buf.push_str("=\"");
            buf.push_str(&escape_label_value(v));
            buf.push('"');
        }
        buf.push('}');
    }
    buf.push(' ');
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        buf.push_str(&format!("{}", value as i64));
    } else {
        buf.push_str(&format!("{value}"));
    }
    buf.push('\n');
}

impl PromText {
    /// An empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emit the `# HELP` and `# TYPE` headers of one metric family.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push_str("\n# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// Emit one sample line with optional labels (label values are
    /// escaped via [`escape_label_value`]).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        write_sample(&mut self.buf, name, labels, value);
    }

    /// Emit a full histogram family under `name`: cumulative
    /// `_bucket{le=...}` lines (the last bound renders as `+Inf`),
    /// then `_sum` and `_count`. `extra` labels are prepended to `le`.
    pub fn histogram(
        &mut self,
        name: &str,
        extra: &[(&str, &str)],
        bounds: &[u64],
        buckets: &[u64],
        sum: u64,
    ) {
        assert_eq!(bounds.len(), buckets.len());
        let mut cumulative = 0u64;
        for (&bound, &count) in bounds.iter().zip(buckets) {
            cumulative += count;
            let le = if bound == u64::MAX {
                "+Inf".to_string()
            } else {
                bound.to_string()
            };
            let mut labels: Vec<(&str, &str)> = extra.to_vec();
            labels.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &labels, cumulative as f64);
        }
        self.sample(&format!("{name}_sum"), extra, sum as f64);
        self.sample(&format!("{name}_count"), extra, cumulative as f64);
    }

    /// Emit one endpoint's request/error counters and latency histogram
    /// under the shared `tms_requests_total` / `tms_request_errors_total` /
    /// `tms_request_latency_us` families (headers are the caller's job —
    /// they are per-family, not per-endpoint).
    pub fn endpoint(&mut self, endpoint: &str, snap: &EndpointSnapshot) {
        self.sample(
            "tms_requests_total",
            &[("endpoint", endpoint)],
            snap.requests as f64,
        );
        self.sample(
            "tms_request_errors_total",
            &[("endpoint", endpoint)],
            snap.errors as f64,
        );
        self.histogram(
            "tms_request_latency_us",
            &[("endpoint", endpoint)],
            &snap.bucket_bounds_us,
            &snap.buckets,
            snap.total_micros,
        );
    }

    /// Emit an [`ObsSnapshot`]: per-phase span totals plus one counter
    /// family per counter key and a `_sum`/`_count` pair per observation
    /// key (keys sanitized via [`sanitize`] under a `tms_` prefix).
    pub fn obs_snapshot(&mut self, snap: &ObsSnapshot) {
        if !snap.phases.is_empty() {
            self.header(
                "tms_phase_spans_total",
                "Spans recorded per pipeline phase",
                "counter",
            );
            for p in &snap.phases {
                self.sample(
                    "tms_phase_spans_total",
                    &[("phase", p.phase.label())],
                    p.spans as f64,
                );
            }
            self.header(
                "tms_phase_time_us_total",
                "Summed span time per pipeline phase, microseconds",
                "counter",
            );
            for p in &snap.phases {
                self.sample(
                    "tms_phase_time_us_total",
                    &[("phase", p.phase.label())],
                    p.total_us as f64,
                );
            }
        }
        for (key, value) in &snap.counters {
            let name = format!("tms_{}_total", sanitize(key));
            self.header(&name, &format!("Flow counter {key}"), "counter");
            self.sample(&name, &[], *value as f64);
        }
        for obs in &snap.observations {
            let name = format!("tms_{}", sanitize(&obs.key));
            self.header(&name, &format!("Flow observation {}", obs.key), "summary");
            self.sample(&format!("{name}_sum"), &[], obs.sum);
            self.sample(&format!("{name}_count"), &[], obs.count as f64);
        }
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// One line of a structurally parsed Prometheus page (see [`parse_page`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PromLine {
    /// A `# HELP <name> <help>` comment.
    Help {
        /// Metric family name.
        name: String,
        /// Help text (may contain spaces).
        help: String,
    },
    /// A `# TYPE <name> <kind>` comment.
    Type {
        /// Metric family name.
        name: String,
        /// Metric kind (`counter`, `gauge`, `histogram`, `summary`).
        kind: String,
    },
    /// A sample line: name, decoded labels, value.
    Sample {
        /// Sample name (including `_bucket`/`_sum`/`_count` suffixes).
        name: String,
        /// Label pairs with escape sequences decoded.
        labels: Vec<(String, String)>,
        /// Sample value.
        value: f64,
    },
}

/// A structurally parsed Prometheus text page that re-renders
/// bit-identically: [`parse_page`] followed by [`PromPage::render`] is
/// the identity on everything [`PromText`] emits (the round trip the
/// parser tests pin down).
#[derive(Debug, Clone, PartialEq)]
pub struct PromPage {
    /// The page's lines in exposition order.
    pub lines: Vec<PromLine>,
}

impl PromPage {
    /// Samples only, in page order.
    pub fn samples(&self) -> impl Iterator<Item = (&str, &[(String, String)], f64)> {
        self.lines.iter().filter_map(|l| match l {
            PromLine::Sample {
                name,
                labels,
                value,
            } => Some((name.as_str(), labels.as_slice(), *value)),
            _ => None,
        })
    }

    /// Re-render the page through the same formatting path as
    /// [`PromText`].
    pub fn render(&self) -> String {
        let mut buf = String::new();
        for line in &self.lines {
            match line {
                PromLine::Help { name, help } => {
                    buf.push_str("# HELP ");
                    buf.push_str(name);
                    buf.push(' ');
                    buf.push_str(help);
                    buf.push('\n');
                }
                PromLine::Type { name, kind } => {
                    buf.push_str("# TYPE ");
                    buf.push_str(name);
                    buf.push(' ');
                    buf.push_str(kind);
                    buf.push('\n');
                }
                PromLine::Sample {
                    name,
                    labels,
                    value,
                } => {
                    let borrowed: Vec<(&str, &str)> = labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect();
                    write_sample(&mut buf, name, &borrowed, *value);
                }
            }
        }
        buf
    }
}

/// Decoded label pairs plus the unparsed remainder of the sample line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parse the label block of a sample line. `s` starts just after `{`;
/// returns the decoded pairs and the rest of the line after `}`.
fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut chars = s.char_indices();
    'pairs: loop {
        // Key runs until '='.
        let mut key = String::new();
        for (_, c) in chars.by_ref() {
            match c {
                '=' => break,
                '}' if key.is_empty() && labels.is_empty() => {
                    // "{}" — empty label set.
                    let rest = chars.as_str();
                    return Ok((labels, rest));
                }
                c => key.push(c),
            }
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label {key:?}: expected opening quote")),
        }
        // Value runs until the closing quote, decoding escapes.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                Some((_, '"')) => break,
                Some((_, c)) => value.push(c),
                None => return Err(format!("unterminated value for label {key:?}")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue 'pairs,
            Some((_, '}')) => return Ok((labels, chars.as_str())),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Parse a Prometheus text page structurally: `# HELP`/`# TYPE` comments
/// and samples with decoded label values, preserving order, so
/// [`PromPage::render`] reproduces the input byte for byte. Unknown
/// comment lines are rejected (the exposition never emits them); so are
/// malformed samples.
pub fn parse_page(text: &str) -> Result<PromPage, String> {
    let mut lines = Vec::new();
    for raw in text.lines() {
        if raw.is_empty() {
            continue;
        }
        if let Some(rest) = raw.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed HELP line {raw:?}"))?;
            lines.push(PromLine::Help {
                name: name.to_string(),
                help: help.to_string(),
            });
        } else if let Some(rest) = raw.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed TYPE line {raw:?}"))?;
            lines.push(PromLine::Type {
                name: name.to_string(),
                kind: kind.to_string(),
            });
        } else if raw.starts_with('#') {
            return Err(format!("unexpected comment line {raw:?}"));
        } else {
            // name[{labels}] value
            let brace = raw.find('{');
            let space = raw
                .find(' ')
                .ok_or_else(|| format!("no value in {raw:?}"))?;
            let (name, labels, rest) = match brace {
                Some(b) if b < space => {
                    let (labels, rest) = parse_labels(&raw[b + 1..])?;
                    (&raw[..b], labels, rest)
                }
                _ => (&raw[..space], Vec::new(), &raw[space..]),
            };
            let value: f64 = rest
                .trim()
                .parse()
                .map_err(|e| format!("bad value in {raw:?}: {e}"))?;
            lines.push(PromLine::Sample {
                name: name.to_string(),
                labels,
                value,
            });
        }
    }
    Ok(PromPage { lines })
}

/// Parse a Prometheus text page into `full-sample-name → value`, where the
/// key includes the label set exactly as printed (e.g.
/// `tms_requests_total{endpoint="flow"}`). Comment and blank lines are
/// skipped; a malformed sample line is an error. Used by the integration
/// tests to cross-check the exposition against the `stats` JSON.
pub fn parse(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split = line
            .rfind(' ')
            .ok_or_else(|| format!("no value in {line:?}"))?;
        let (name, value) = line.split_at(split);
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad value in {line:?}: {e}"))?;
        samples.insert(name.trim().to_string(), value);
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EndpointMetrics;
    use crate::record::{span, Recorder};
    use crate::sinks::AggregatingSink;
    use crate::Phase;

    #[test]
    fn sanitize_flattens_separators() {
        assert_eq!(sanitize("place.fail.bram-column"), "place_fail_bram_column");
        assert_eq!(sanitize("cache.hit"), "cache_hit");
    }

    #[test]
    fn histogram_series_are_cumulative_and_end_at_inf() {
        let m = EndpointMetrics::default();
        m.record(50, true);
        m.record(60, true);
        m.record(700, false);
        let mut text = PromText::new();
        text.endpoint("estimate", &m.snapshot());
        let page = text.finish();
        let samples = parse(&page).unwrap();
        assert_eq!(
            samples["tms_requests_total{endpoint=\"estimate\"}"] as u64,
            3
        );
        assert_eq!(
            samples["tms_request_errors_total{endpoint=\"estimate\"}"] as u64,
            1
        );
        assert_eq!(
            samples["tms_request_latency_us_bucket{endpoint=\"estimate\",le=\"100\"}"] as u64,
            2
        );
        assert_eq!(
            samples["tms_request_latency_us_bucket{endpoint=\"estimate\",le=\"1000\"}"] as u64, 3,
            "buckets must be cumulative"
        );
        assert_eq!(
            samples["tms_request_latency_us_bucket{endpoint=\"estimate\",le=\"+Inf\"}"] as u64,
            3
        );
        assert_eq!(
            samples["tms_request_latency_us_sum{endpoint=\"estimate\"}"] as u64,
            810
        );
        assert_eq!(
            samples["tms_request_latency_us_count{endpoint=\"estimate\"}"] as u64,
            3
        );
    }

    #[test]
    fn obs_snapshot_renders_phases_counters_and_observations() {
        let sink = AggregatingSink::new();
        span(&sink, Phase::Place, "m").finish();
        span(&sink, Phase::Place, "n").finish();
        sink.count("place.fail.congestion", 4);
        sink.observe("flow.cf.placed", 1.5);
        sink.observe("flow.cf.placed", 2.0);
        let mut text = PromText::new();
        text.obs_snapshot(&sink.snapshot());
        let page = text.finish();
        let samples = parse(&page).unwrap();
        assert_eq!(samples["tms_phase_spans_total{phase=\"place\"}"] as u64, 2);
        assert!(samples.contains_key("tms_phase_time_us_total{phase=\"place\"}"));
        assert_eq!(samples["tms_place_fail_congestion_total"] as u64, 4);
        assert_eq!(samples["tms_flow_cf_placed_count"] as u64, 2);
        assert!((samples["tms_flow_cf_placed_sum"] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("just_a_name_no_value").is_err());
        assert!(parse("name not_a_number").is_err());
        assert!(parse("# HELP x y\n# TYPE x counter\nx 1\n").is_ok());
    }

    #[test]
    fn label_values_are_escaped_and_decoded() {
        let mut text = PromText::new();
        text.sample(
            "tms_build_info",
            &[("version", "weird\"quote\\slash\nnewline")],
            1.0,
        );
        let page = text.finish();
        assert!(
            page.contains(r#"version="weird\"quote\\slash\nnewline""#),
            "{page}"
        );
        let parsed = parse_page(&page).unwrap();
        let (_, labels, value) = parsed.samples().next().unwrap();
        assert_eq!(labels[0].1, "weird\"quote\\slash\nnewline");
        assert_eq!(value, 1.0);
        assert_eq!(parsed.render(), page, "escaped page must round-trip");
    }

    #[test]
    fn full_page_round_trips_bit_identically() {
        // A page exercising every emission path: headers, plain and
        // labelled samples, a histogram family with its cumulative
        // buckets / _sum / _count, summaries, and non-integer values.
        let m = EndpointMetrics::default();
        m.record(50, true);
        m.record(60, true);
        m.record(700, false);
        m.record(2_000_000, true);
        let sink = AggregatingSink::new();
        span(&sink, Phase::Place, "m").finish();
        sink.count("place.fail.congestion", 4);
        sink.observe("flow.cf.placed", 1.5);
        sink.observe("flow.cf.placed", 2.0);

        let mut text = PromText::new();
        text.header("tms_requests_total", "Requests per endpoint", "counter");
        text.header(
            "tms_request_latency_us",
            "Request latency, microseconds",
            "histogram",
        );
        text.endpoint("estimate", &m.snapshot());
        text.obs_snapshot(&sink.snapshot());
        text.sample("tms_build_info", &[("version", "0.1.0")], 1.0);
        text.sample("tms_uptime_seconds", &[], 12.25);
        let page = text.finish();

        let parsed = parse_page(&page).expect("page must parse structurally");
        assert_eq!(parsed.render(), page, "render(parse(page)) != page");
        // And again: the round trip is a fixed point.
        let reparsed = parse_page(&parsed.render()).unwrap();
        assert_eq!(reparsed, parsed);

        // The structural parse agrees with the flat sample map.
        let flat = parse(&page).unwrap();
        assert_eq!(flat.len(), parsed.samples().count());
        // Histogram series survive with their cumulative structure.
        let buckets: Vec<f64> = parsed
            .samples()
            .filter(|(n, ..)| *n == "tms_request_latency_us_bucket")
            .map(|(.., v)| v)
            .collect();
        assert_eq!(buckets.len(), m.snapshot().buckets.len());
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "cumulative");
        assert_eq!(*buckets.last().unwrap() as u64, 4, "+Inf sees all");
    }

    #[test]
    fn parse_page_rejects_malformed_lines() {
        assert!(parse_page("tms_x{le=\"unterminated 1").is_err());
        assert!(parse_page("tms_x{le=nodquote} 1").is_err());
        assert!(parse_page("# WEIRD comment").is_err());
        assert!(parse_page("tms_x{a=\"b\"} nan_value_x").is_err());
    }
}
