//! The [`Recorder`] trait, the [`Span`] guard, and the no-op default.

use crate::phase::Phase;
use std::sync::OnceLock;
use std::time::Instant;

/// A finished span: phase, free-form name, start offset and duration
/// (both microseconds since the process trace epoch), and numeric
/// key/value fields (CF values, attempt counts, ...).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Owning request's trace id; `0` means untraced (background work).
    pub trace_id: u64,
    /// Pipeline phase.
    pub phase: Phase,
    /// Free-form name (usually the module or stage name).
    pub name: String,
    /// Microseconds since the trace epoch at which the span started.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Numeric key/value annotations.
    pub fields: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Value of a named field, if recorded.
    pub fn field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One event of a trace: what the JSONL sink writes and [`crate::replay`]
/// feeds back into a recorder.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A finished span.
    Span(SpanRecord),
    /// A counter increment.
    Count {
        /// Owning request's trace id (`0` = untraced).
        trace_id: u64,
        /// Counter key (e.g. `cache.hit`).
        key: String,
        /// Increment.
        delta: u64,
    },
    /// A numeric observation (e.g. a CF value).
    Observe {
        /// Owning request's trace id (`0` = untraced).
        trace_id: u64,
        /// Observation key (e.g. `flow.cf.placed`).
        key: String,
        /// Observed value.
        value: f64,
    },
}

impl TraceEvent {
    /// The owning request's trace id (`0` = untraced).
    pub fn trace_id(&self) -> u64 {
        match self {
            TraceEvent::Span(s) => s.trace_id,
            TraceEvent::Count { trace_id, .. } | TraceEvent::Observe { trace_id, .. } => *trace_id,
        }
    }
}

/// A pluggable telemetry sink. Implementations must be thread-safe: the
/// flow records from rayon workers and the server from its pool.
///
/// All methods have defaults, so a sink that only cares about spans (or
/// only about counters) implements exactly what it needs.
pub trait Recorder: Send + Sync {
    /// Whether recording is on. [`span`] checks this once at construction
    /// and skips all allocation when it is `false`, which is what keeps
    /// the no-op hot path free.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one finished span.
    fn record_span(&self, span: &SpanRecord) {
        let _ = span;
    }

    /// Add `delta` to the named counter.
    fn count(&self, key: &str, delta: u64) {
        let _ = (key, delta);
    }

    /// Record one numeric observation under `key`.
    fn observe(&self, key: &str, value: f64) {
        let _ = (key, value);
    }
}

/// The do-nothing recorder: `enabled()` is `false`, so spans against it
/// never allocate and every counter/observation is dropped.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

static NOOP: NoopRecorder = NoopRecorder;

/// The shared no-op recorder — the default `obs` value of every config.
pub fn noop() -> &'static dyn Recorder {
    &NOOP
}

/// The process-wide trace epoch; all span `start_us` offsets share it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// An in-flight span; records itself to the recorder when dropped.
/// Obtain one via [`span`].
pub struct Span<'a> {
    obs: &'a dyn Recorder,
    phase: Phase,
    name: &'a str,
    start_us: u64,
    t0: Instant,
    fields: Vec<(String, f64)>,
    armed: bool,
}

/// Open a span. If `obs` is disabled the returned guard is inert: no
/// clock reads beyond construction, no allocation, nothing recorded.
pub fn span<'a>(obs: &'a dyn Recorder, phase: Phase, name: &'a str) -> Span<'a> {
    let armed = obs.enabled();
    Span {
        obs,
        phase,
        name,
        start_us: if armed { now_us() } else { 0 },
        t0: Instant::now(),
        fields: Vec::new(),
        armed,
    }
}

impl Span<'_> {
    /// Attach a numeric field (dropped when the recorder is disabled).
    pub fn field(&mut self, key: &str, value: f64) {
        if self.armed {
            self.fields.push((key.to_string(), value));
        }
    }

    /// Elapsed time of the span so far.
    pub fn elapsed_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let record = SpanRecord {
            trace_id: 0,
            phase: self.phase,
            name: self.name.to_string(),
            start_us: self.start_us,
            duration_us: self.t0.elapsed().as_micros() as u64,
            fields: std::mem::take(&mut self.fields),
        };
        self.obs.record_span(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Capture(Mutex<Vec<SpanRecord>>);

    impl Recorder for Capture {
        fn record_span(&self, span: &SpanRecord) {
            self.0.lock().unwrap().push(span.clone());
        }
    }

    #[test]
    fn span_records_on_drop_with_fields() {
        let cap = Capture(Mutex::new(Vec::new()));
        {
            let mut s = span(&cap, Phase::Place, "m0");
            s.field("cf", 1.5);
            s.field("attempts", 3.0);
        }
        let spans = cap.0.lock().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Place);
        assert_eq!(spans[0].name, "m0");
        assert_eq!(spans[0].field("cf"), Some(1.5));
        assert_eq!(spans[0].field("attempts"), Some(3.0));
        assert_eq!(spans[0].field("nope"), None);
    }

    #[test]
    fn noop_spans_record_nothing_and_stay_empty() {
        let mut s = span(noop(), Phase::Synth, "quiet");
        s.field("ignored", 1.0);
        assert!(s.fields.is_empty(), "disabled spans must not allocate");
        assert_eq!(s.fields.capacity(), 0);
        s.finish();
    }

    #[test]
    fn trace_events_serde_round_trip() {
        let events = vec![
            TraceEvent::Span(SpanRecord {
                trace_id: 42,
                phase: Phase::Cache,
                name: "lookup".into(),
                start_us: 10,
                duration_us: 20,
                fields: vec![("hits".into(), 74.0)],
            }),
            TraceEvent::Count {
                trace_id: 0,
                key: "cache.hit".into(),
                delta: 74,
            },
            TraceEvent::Observe {
                trace_id: 42,
                key: "flow.cf.placed".into(),
                value: 1.18,
            },
        ];
        for ev in events {
            let line = serde_json::to_string(&ev).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, ev);
        }
    }
}
