//! # tms-obs — the observability substrate of the workspace
//!
//! The paper's whole argument rests on per-module flow telemetry: CF
//! values tried, feasible-first-try rates, tool runs spent, placement
//! failure causes. This crate is the shared layer every other crate
//! records that telemetry through, without committing anyone to a
//! particular backend:
//!
//! * [`Phase`] — the eight pipeline phases (`synth`, `pack`, `place`,
//!   `route`, `stitch`, `estimate`, `cache`, `store`) every span is
//!   labelled with;
//! * [`Recorder`] — the pluggable sink trait: spans, named counters and
//!   numeric observations. The default is [`NoopRecorder`] (via
//!   [`noop()`]), which keeps the hot path allocation-free: a [`Span`]
//!   against a disabled recorder never clones its name and never grows
//!   its field vector;
//! * [`JsonlSink`] — one JSON document per line, for experiment runs;
//!   read back with [`read_trace`] and rendered by [`report::render`]
//!   (the `tms report` subcommand);
//! * [`AggregatingSink`] — in-memory per-phase totals plus counter and
//!   observation maps, the backend of the serve layer's `stats` and
//!   Prometheus endpoints and of the experiment drivers' accounting;
//! * [`metrics`] — dependency-free counter/histogram primitives (plain
//!   `AtomicU64`), including the endpoint metrics the serving layer uses;
//! * [`prometheus`] — text exposition (and a small parser for tests);
//! * [`slowlog`] — request-scoped tracing: [`RequestCtx`] trace contexts
//!   minted per request, the [`RequestRecorder`] that tags every event
//!   with its owning request's trace id, and the tail-sampling
//!   [`Slowlog`] ring that retains full span trees only for slow,
//!   errored, shed or degraded requests;
//! * [`slo`] — per-endpoint SLO definitions ([`SloSpec`]) with
//!   multi-window (5 min / 1 h) burn-rate tracking ([`SloTracker`]).
//!
//! ```
//! use tms_obs::{span, AggregatingSink, Phase, Recorder};
//!
//! let sink = AggregatingSink::new();
//! {
//!     let mut s = span(&sink, Phase::Place, "mvau_18");
//!     s.field("cf", 1.18);
//!     sink.count("pblock.search.tool_runs", 3);
//! } // span records on drop
//! assert_eq!(sink.phase_spans(Phase::Place), 1);
//! assert_eq!(sink.counter("pblock.search.tool_runs"), 3);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod phase;
pub mod prometheus;
pub mod record;
pub mod report;
pub mod sinks;
pub mod slo;
pub mod slowlog;

pub use metrics::{
    quantile_from_buckets, Counter, EndpointMetrics, EndpointSnapshot, Histogram,
    FINE_LATENCY_BUCKETS_US, LATENCY_BUCKETS_US,
};
pub use phase::Phase;
pub use record::{noop, now_us, span, NoopRecorder, Recorder, Span, SpanRecord, TraceEvent};
pub use sinks::{
    read_trace, replay, AggregatingSink, JsonlSink, ObsSnapshot, ObservationSnapshot, PhaseSnapshot,
};
pub use slo::{BurnRateSample, SloSpec, SloTracker, BURN_WINDOWS};
pub use slowlog::{
    PhaseBudget, RequestCtx, RequestOutcome, RequestRecorder, Slowlog, SlowlogEntry, TraceIdGen,
};
