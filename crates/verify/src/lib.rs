//! # tms-verify — the independent legality auditor
//!
//! Everything downstream of the flow — the implementation cache, the
//! persistent macro store, the serving layer — replays implementations it
//! did not just compute. This crate is the trust anchor for that replay:
//! a dependency-light auditor that re-derives the *legality* of an
//! implemented module from first principles, using only the substrate
//! crates (device model, packer, quick placer) and none of the flow
//! machinery that produced the artifact in the first place.
//!
//! The auditor never answers with a bool. Every check that fails becomes
//! one structured [`Violation`] with a stable dotted code, so callers can
//! count, classify, and surface failures (`tms verify`, Prometheus
//! `tms_verify_*` series, quarantine decisions) without parsing prose.
//!
//! Three audit surfaces, all on [`Auditor`]:
//!
//! * [`Auditor::audit_macro`] — a PBlock + detailed placement pair:
//!   rectangle inside the device, honest relocation signature, honest
//!   per-kind capacity (via the [`CapacityPrefix`] oracle), slice budgets,
//!   utilization/irregularity arithmetic, congestion range.
//! * [`Auditor::audit_netlist`] — the netlist ↔ macro shape agreement:
//!   re-packs the netlist and checks the recorded placement against the
//!   re-derived demand, carry-chain shapes (first-fit-decreasing replay)
//!   and the CF slice target.
//! * [`Auditor::audit_stitch`] — a stitched placement: every anchored
//!   instance on a signature-matching, alignment-respecting, in-bounds
//!   position, and zero footprint overlap across the whole design.
//!
//! The checks are *sound* against the real flow: any module produced by
//! `implement_module` and any placement produced by the stitcher audits
//! clean (the workspace's zero-false-positive sweep test pins this), so a
//! non-empty audit means the artifact was corrupted or forged after it
//! was built.

#![warn(missing_docs)]

use tms_device::{CapacityPrefix, Device, Rect};
use tms_netlist::Netlist;
use tms_pblock::PBlock;
use tms_place::{quick_place, Placement};
use tms_stitch::StitchProblem;
use tms_synth::pack;

/// One failed legality check.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Stable dotted code of the check that failed (e.g. `macro.capacity`,
    /// `stitch.overlap`) — the classification key for counters and
    /// quarantine decisions.
    pub code: String,
    /// The module or instance the violation is about.
    pub subject: String,
    /// Human-readable evidence: what was recorded versus what the auditor
    /// re-derived.
    pub detail: String,
}

impl Violation {
    fn new(code: &str, subject: &str, detail: String) -> Violation {
        Violation {
            code: code.to_string(),
            subject: subject.to_string(),
            detail,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.code, self.subject, self.detail)
    }
}

/// The legality auditor for one device. Construction builds the
/// [`CapacityPrefix`] oracle once; audits over many macros of the same
/// device share it.
pub struct Auditor<'d> {
    device: &'d Device,
    prefix: CapacityPrefix,
}

impl<'d> Auditor<'d> {
    /// An auditor for `device`.
    pub fn new(device: &'d Device) -> Auditor<'d> {
        Auditor {
            device,
            prefix: CapacityPrefix::build(device),
        }
    }

    /// The audited device.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// The per-column capacity oracle.
    pub fn prefix(&self) -> &CapacityPrefix {
        &self.prefix
    }

    /// Audit one implemented macro: the PBlock it claims and the detailed
    /// placement inside it. Returns every violated invariant (empty =
    /// legal).
    pub fn audit_macro(
        &self,
        name: &str,
        cf: f64,
        pblock: &PBlock,
        placement: &Placement,
    ) -> Vec<Violation> {
        let mut v = Vec::new();
        let rect = &pblock.rect;

        // The rectangle must lie on the device and be non-degenerate.
        let bounds = self.prefix.bounds();
        if rect.w == 0 || rect.h == 0 || !bounds.contains(rect) {
            v.push(Violation::new(
                "macro.bounds",
                name,
                format!("pblock {rect:?} outside device bounds {bounds:?}"),
            ));
            // Everything below indexes columns under the rectangle.
            return v;
        }

        // The recorded relocation signature and capacity must equal what
        // the device actually provides under the rectangle — a forged
        // capacity is how an oversubscribed macro sneaks past `covers`.
        let signature = self.device.signature(rect.x, rect.w);
        if signature != pblock.signature {
            v.push(Violation::new(
                "macro.signature",
                name,
                format!(
                    "recorded signature {:?} != device columns {:?} at x={}",
                    pblock.signature, signature, rect.x
                ),
            ));
        }
        let capacity = self.prefix.capacity_in(rect);
        if capacity != pblock.capacity {
            v.push(Violation::new(
                "macro.capacity",
                name,
                format!(
                    "recorded capacity {:?} != device capacity {:?}",
                    pblock.capacity, capacity
                ),
            ));
        }

        // The placement must be *of this PBlock*: same region, same
        // capacity view.
        if placement.region != *rect {
            v.push(Violation::new(
                "macro.region",
                name,
                format!(
                    "placement region {:?} != pblock rect {rect:?}",
                    placement.region
                ),
            ));
        }
        if placement.capacity != capacity {
            v.push(Violation::new(
                "macro.placement_capacity",
                name,
                format!(
                    "placement capacity {:?} != device capacity {capacity:?}",
                    placement.capacity
                ),
            ));
        }

        // Slice budgets: demand within capacity, spread within capacity,
        // and the spread can never undercut the demand.
        let total = capacity.slices();
        if placement.required_slices > total
            || placement.used_slices > total
            || placement.used_slices < placement.required_slices
        {
            v.push(Violation::new(
                "macro.slices",
                name,
                format!(
                    "required {} / used {} vs capacity {total}",
                    placement.required_slices, placement.used_slices
                ),
            ));
        }

        // Derived arithmetic: utilization and irregularity are pure
        // functions of (required, capacity); re-derive and compare.
        let (want_u, want_irr) = if placement.required_slices == 0 {
            (0.0, 0.0)
        } else {
            let r = f64::from(placement.required_slices) / f64::from(total.max(1));
            (r, 1.0 - r)
        };
        if placement.utilization != want_u || !placement.utilization.is_finite() {
            v.push(Violation::new(
                "macro.utilization",
                name,
                format!("recorded {} != derived {want_u}", placement.utilization),
            ));
        }
        if placement.irregularity != want_irr || !placement.irregularity.is_finite() {
            v.push(Violation::new(
                "macro.irregularity",
                name,
                format!("recorded {} != derived {want_irr}", placement.irregularity),
            ));
        }

        // Congestion is seed-jittered, so it cannot be re-derived exactly;
        // but a legal placement is only ever emitted at congestion ≤ 1.
        if !placement.congestion.is_finite() || !(0.0..=1.0).contains(&placement.congestion) {
            v.push(Violation::new(
                "macro.congestion",
                name,
                format!("congestion {} outside [0, 1]", placement.congestion),
            ));
        }

        // CF sanity: finite, non-negative, and the PBlock must have been
        // frozen at the macro's CF.
        if !cf.is_finite() || cf < 0.0 || pblock.cf.to_bits() != cf.to_bits() {
            v.push(Violation::new(
                "macro.cf",
                name,
                format!("macro cf {cf} vs pblock cf {}", pblock.cf),
            ));
        }

        v
    }

    /// Audit the netlist ↔ macro agreement: re-derive the packed demand,
    /// carry-chain shapes and CF slice target from `netlist` and check the
    /// recorded macro against them. Catches entries whose payload decodes
    /// fine but no longer describes the module it is keyed by.
    pub fn audit_netlist(
        &self,
        name: &str,
        cf: f64,
        pblock: &PBlock,
        placement: &Placement,
        netlist: &Netlist,
    ) -> Vec<Violation> {
        let mut v = Vec::new();
        let stats = netlist.stats();
        let packing = pack(&stats);

        if !pblock.capacity.covers(&packing.demand) {
            v.push(Violation::new(
                "netlist.demand",
                name,
                format!(
                    "packed demand {:?} not covered by pblock capacity {:?}",
                    packing.demand, pblock.capacity
                ),
            ));
        }
        if placement.required_slices != packing.required_slices {
            v.push(Violation::new(
                "netlist.required",
                name,
                format!(
                    "placement records {} required slices, packer derives {}",
                    placement.required_slices, packing.required_slices
                ),
            ));
        }

        // Carry chains: replay the placer's first-fit-decreasing fit into
        // the rectangle's CLB columns (each `rect.h` contiguous slices).
        if let Some(&tallest) = packing.chain_slices.first() {
            let rect = &pblock.rect;
            if tallest > rect.h {
                v.push(Violation::new(
                    "netlist.chains",
                    name,
                    format!("tallest chain {tallest} > pblock height {}", rect.h),
                ));
            } else {
                let end = rect.right().min(self.device.width());
                let mut free: Vec<u32> = (rect.x..end)
                    .filter(|&x| self.device.column(x).kind.is_clb())
                    .map(|_| rect.h)
                    .collect();
                for &chain in &packing.chain_slices {
                    match free.iter_mut().find(|f| **f >= chain) {
                        Some(slot) => *slot -= chain,
                        None => {
                            v.push(Violation::new(
                                "netlist.chains",
                                name,
                                format!(
                                    "chain shapes {:?} do not fit the pblock's CLB columns",
                                    packing.chain_slices
                                ),
                            ));
                            break;
                        }
                    }
                }
            }
        }

        // The slice target the generator satisfied is `⌈est · cf⌉` of the
        // re-derived quick-placement shape.
        let shape = quick_place(&stats, &packing);
        let want_target = (f64::from(shape.est_slices) * cf.max(0.0)).ceil() as u32;
        if pblock.target_slices != want_target {
            v.push(Violation::new(
                "netlist.target",
                name,
                format!(
                    "pblock target {} != ⌈{} · {cf}⌉ = {want_target}",
                    pblock.target_slices, shape.est_slices
                ),
            ));
        }

        v
    }

    /// Audit a stitched placement: per-instance anchor legality (matching
    /// column signature, vertical alignment, in bounds) plus zero overlap
    /// between any two placed footprints.
    pub fn audit_stitch(
        &self,
        problem: &StitchProblem,
        positions: &[Option<(u32, u32)>],
    ) -> Vec<Violation> {
        let mut v = Vec::new();
        if positions.len() != problem.instances.len() {
            v.push(Violation::new(
                "stitch.instances",
                "design",
                format!(
                    "{} positions for {} instances",
                    positions.len(),
                    problem.instances.len()
                ),
            ));
            return v;
        }
        let rows = self.device.rows();
        let width = self.device.width();
        let mut placed: Vec<(usize, Rect)> = Vec::new();
        for (i, pos) in positions.iter().enumerate() {
            let Some((x, y)) = *pos else { continue };
            let Some(&module) = problem.instances.get(i) else {
                continue;
            };
            let Some(m) = problem.modules.get(module) else {
                v.push(Violation::new(
                    "stitch.instances",
                    &format!("instance {i}"),
                    format!("module index {module} out of range"),
                ));
                continue;
            };
            let subject = format!("{}#{i}", m.name);
            if x + m.width > width || y + m.height > rows {
                v.push(Violation::new(
                    "stitch.bounds",
                    &subject,
                    format!("anchor ({x},{y}) + {}x{} exceeds device", m.width, m.height),
                ));
                continue;
            }
            if self.device.signature(x, m.width) != m.signature {
                v.push(Violation::new(
                    "stitch.signature",
                    &subject,
                    format!("columns at x={x} do not match the macro's signature"),
                ));
            }
            let step = m.signature.y_alignment();
            if step > 1 && y % step != 0 {
                v.push(Violation::new(
                    "stitch.alignment",
                    &subject,
                    format!("anchor row {y} not a multiple of the alignment {step}"),
                ));
            }
            placed.push((i, Rect::new(x, y, m.width, m.height)));
        }
        for (a, (i, ra)) in placed.iter().enumerate() {
            for (j, rb) in placed.iter().skip(a + 1) {
                if ra.overlaps(rb) {
                    v.push(Violation::new(
                        "stitch.overlap",
                        &format!("instances {i}/{j}"),
                        format!("{ra:?} overlaps {rb:?}"),
                    ));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_device::SliceCapacity;
    use tms_pblock::PBlockGenerator;
    use tms_place::{place_in_region, PlacementModel};

    /// Implement one real module the way the flow does (generator +
    /// detailed placement), so the tests audit genuine artifacts.
    fn implement(device: &Device, netlist: &Netlist, cf: f64) -> (PBlock, Placement) {
        let stats = netlist.stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        let gen = PBlockGenerator::new(device, true);
        let pblock = gen.generate(&shape, cf).expect("feasible at this cf");
        let placement = place_in_region(
            &stats,
            &packing,
            device,
            &pblock.rect,
            &PlacementModel::default(),
            7,
        )
        .expect("placeable at this cf");
        (pblock, placement)
    }

    fn sample() -> (Device, Netlist) {
        let device = Device::xc7z045();
        let netlist = tms_cnn::synth_module(tms_cnn::ModuleRole::Mvau, 60, "mvau_t", 3);
        (device, netlist)
    }

    #[test]
    fn genuine_macro_audits_clean() {
        let (device, netlist) = sample();
        let (pblock, placement) = implement(&device, &netlist, 1.5);
        let auditor = Auditor::new(&device);
        assert_eq!(
            auditor.audit_macro("mvau_t", 1.5, &pblock, &placement),
            vec![]
        );
        assert_eq!(
            auditor.audit_netlist("mvau_t", 1.5, &pblock, &placement, &netlist),
            vec![]
        );
    }

    #[test]
    fn forged_capacity_is_caught() {
        let (device, netlist) = sample();
        let (mut pblock, placement) = implement(&device, &netlist, 1.5);
        pblock.capacity = SliceCapacity {
            l_slices: pblock.capacity.l_slices + 100,
            ..pblock.capacity
        };
        let auditor = Auditor::new(&device);
        let v = auditor.audit_macro("mvau_t", 1.5, &pblock, &placement);
        assert!(
            v.iter().any(|x| x.code == "macro.capacity"),
            "violations: {v:?}"
        );
    }

    #[test]
    fn moved_rect_breaks_signature_or_capacity() {
        let (device, netlist) = sample();
        let (mut pblock, mut placement) = implement(&device, &netlist, 1.5);
        pblock.rect.x += 1; // shift under different columns
        placement.region = pblock.rect;
        let auditor = Auditor::new(&device);
        let v = auditor.audit_macro("mvau_t", 1.5, &pblock, &placement);
        assert!(
            v.iter()
                .any(|x| x.code == "macro.signature" || x.code == "macro.capacity"),
            "violations: {v:?}"
        );
    }

    #[test]
    fn out_of_bounds_rect_is_caught() {
        let (device, netlist) = sample();
        let (mut pblock, placement) = implement(&device, &netlist, 1.5);
        pblock.rect.y = device.rows(); // degenerate: off the fabric
        let auditor = Auditor::new(&device);
        let v = auditor.audit_macro("mvau_t", 1.5, &pblock, &placement);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code, "macro.bounds");
    }

    #[test]
    fn inflated_slice_accounting_is_caught() {
        let (device, netlist) = sample();
        let (pblock, mut placement) = implement(&device, &netlist, 1.5);
        placement.used_slices = placement.capacity.slices() + 1;
        let auditor = Auditor::new(&device);
        let v = auditor.audit_macro("mvau_t", 1.5, &pblock, &placement);
        assert!(v.iter().any(|x| x.code == "macro.slices"), "{v:?}");
    }

    #[test]
    fn tampered_utilization_is_caught() {
        let (device, netlist) = sample();
        let (pblock, mut placement) = implement(&device, &netlist, 1.5);
        placement.utilization *= 0.5;
        let auditor = Auditor::new(&device);
        let v = auditor.audit_macro("mvau_t", 1.5, &pblock, &placement);
        assert!(v.iter().any(|x| x.code == "macro.utilization"), "{v:?}");
    }

    #[test]
    fn wrong_netlist_disagrees_with_macro() {
        let (device, netlist) = sample();
        let (pblock, placement) = implement(&device, &netlist, 1.5);
        // Audit the macro against a *different* module's netlist.
        let other = tms_cnn::synth_module(tms_cnn::ModuleRole::Weights, 80, "w_t", 9);
        let auditor = Auditor::new(&device);
        let v = auditor.audit_netlist("mvau_t", 1.5, &pblock, &placement, &other);
        assert!(!v.is_empty(), "a swapped netlist must not audit clean");
    }

    #[test]
    fn cf_mismatch_is_caught() {
        let (device, netlist) = sample();
        let (pblock, placement) = implement(&device, &netlist, 1.5);
        let auditor = Auditor::new(&device);
        let v = auditor.audit_macro("mvau_t", 1.7, &pblock, &placement);
        assert!(v.iter().any(|x| x.code == "macro.cf"), "{v:?}");
    }

    #[test]
    fn stitch_overlap_and_misalignment_are_caught() {
        let (device, netlist) = sample();
        let (pblock, placement) = implement(&device, &netlist, 1.5);
        let m = tms_stitch::MacroBlock {
            name: "mvau_t".into(),
            signature: pblock.signature.clone(),
            width: pblock.rect.w,
            height: pblock.rect.h,
            used_slices: placement.used_slices,
            irregularity: placement.irregularity,
        };
        let mut problem = StitchProblem::new(vec![m]);
        problem.instances = vec![0, 0];
        let auditor = Auditor::new(&device);
        let x = pblock.rect.x;

        // Two instances on the same anchor: overlap.
        let v = auditor.audit_stitch(&problem, &[Some((x, 0)), Some((x, 0))]);
        assert!(v.iter().any(|x| x.code == "stitch.overlap"), "{v:?}");

        // Mismatched columns: the anchor one column over has a different
        // signature (or runs off the device).
        let v = auditor.audit_stitch(&problem, &[Some((x + 1, 0)), None]);
        assert!(
            v.iter()
                .any(|x| x.code == "stitch.signature" || x.code == "stitch.bounds"),
            "{v:?}"
        );

        // A clean single placement audits clean.
        let v = auditor.audit_stitch(&problem, &[Some((x, 0)), None]);
        assert_eq!(v, vec![]);
    }
}
