//! The evolutionary lane: crossover + mutation over whole solutions with
//! elitist truncation selection, per RapidLayout's FPGA hard-block placer.

use crate::derive_seed;
use crate::problem::{Score, SearchProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evolutionary-lane parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EaParams {
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability an offspring is mutated after crossover.
    pub mutation_rate: f64,
    /// Mutation strength (approximate number of random moves applied).
    pub mutation_strength: u32,
    /// Move-budget cost charged per offspring (crossover + full
    /// re-score), used to convert the portfolio's per-round move budget
    /// into an offspring count so SA and EA lanes burn comparable time.
    pub moves_per_offspring: u64,
}

impl Default for EaParams {
    fn default() -> Self {
        EaParams {
            population: 8,
            tournament: 3,
            mutation_rate: 0.85,
            mutation_strength: 24,
            moves_per_offspring: 96,
        }
    }
}

/// One evolutionary lane of the portfolio.
pub struct EaLane<'p, P: SearchProblem> {
    problem: &'p P,
    rng: StdRng,
    params: EaParams,
    /// Population, kept sorted best-first (deterministic tie-break on
    /// insertion order).
    population: Vec<(P::Solution, Score)>,
    best_score: Score,
    improved_this_round: bool,
    pub(crate) offspring: u64,
    pub(crate) moves: u64,
}

impl<'p, P: SearchProblem> EaLane<'p, P> {
    /// Build a lane: seed a population of independent initial solutions.
    pub fn new(problem: &'p P, seed: u64, params: EaParams) -> Self {
        let pop_n = params.population.max(2);
        let population: Vec<P::Solution> = (0..pop_n as u64)
            .map(|i| problem.initial(derive_seed(seed, i)))
            .collect();
        Self::with_population(problem, seed, params, population)
    }

    /// Build a lane from a shared base solution: the population is the
    /// base plus mutated clones. The portfolio uses this because for
    /// placement-sized problems constructing a solution costs more than
    /// an entire lane round.
    pub fn with_base(problem: &'p P, seed: u64, params: EaParams, base: P::Solution) -> Self {
        let pop_n = params.population.max(2);
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, u64::MAX));
        let population: Vec<P::Solution> = (0..pop_n)
            .map(|i| {
                let mut s = base.clone();
                if i > 0 {
                    problem.mutate(&mut s, params.mutation_strength, &mut rng);
                }
                s
            })
            .collect();
        Self::with_population(problem, seed, params, population)
    }

    fn with_population(
        problem: &'p P,
        seed: u64,
        params: EaParams,
        members: Vec<P::Solution>,
    ) -> Self {
        let rng = StdRng::seed_from_u64(seed);
        let mut population: Vec<(P::Solution, Score)> = members
            .into_iter()
            .map(|s| {
                let sc = problem.score(&s);
                (s, sc)
            })
            .collect();
        sort_population(&mut population);
        let best_score = population[0].1;
        EaLane {
            problem,
            rng,
            params,
            population,
            best_score,
            improved_this_round: false,
            offspring: 0,
            moves: 0,
        }
    }

    fn tournament_pick(&mut self) -> usize {
        let n = self.population.len();
        let mut winner = self.rng.gen_range(0..n);
        for _ in 1..self.params.tournament.max(1) {
            let c = self.rng.gen_range(0..n);
            // Population is sorted best-first: a smaller index wins.
            winner = winner.min(c);
        }
        winner
    }

    /// Run one portfolio round worth of generations: `budget` is the
    /// portfolio's per-lane move budget, converted to offspring via
    /// [`EaParams::moves_per_offspring`].
    pub fn run_round(&mut self, budget: u64) {
        self.improved_this_round = false;
        let children = (budget / self.params.moves_per_offspring.max(1)).max(1);
        for _ in 0..children {
            self.offspring += 1;
            self.moves += self.params.moves_per_offspring;
            let ia = self.tournament_pick();
            let ib = self.tournament_pick();
            let mut child = {
                let (a, _) = &self.population[ia];
                let (b, _) = &self.population[ib];
                self.problem.crossover(a, b, &mut self.rng)
            };
            if self.rng.gen::<f64>() < self.params.mutation_rate {
                self.problem
                    .mutate(&mut child, self.params.mutation_strength, &mut self.rng);
            }
            let score = self.problem.score(&child);
            // Elitist steady-state insert: replace the current worst if
            // the child beats it.
            let worst = self.population.len() - 1;
            if score.better_than(&self.population[worst].1) {
                self.population.pop();
                let at = self
                    .population
                    .partition_point(|(_, s)| !score.better_than(s));
                self.population.insert(at, (child, score));
                if score.better_than(&self.best_score) {
                    self.best_score = score;
                    self.improved_this_round = true;
                }
            }
        }
    }

    /// Best individual in the population.
    pub fn best(&self) -> (&P::Solution, Score) {
        let (s, sc) = &self.population[0];
        (s, *sc)
    }

    /// Exchange step: inject the portfolio's global best into the
    /// population (replacing the worst individual) when it is strictly
    /// better than the lane's own best. Returns `true` on adoption.
    pub fn on_exchange(&mut self, global_best: &P::Solution, global_score: Score) -> bool {
        if !global_score.better_than(&self.best_score) {
            return false;
        }
        self.population.pop();
        self.population
            .insert(0, (global_best.clone(), global_score));
        self.best_score = global_score;
        true
    }
}

fn sort_population<S>(population: &mut [(S, Score)]) {
    // Stable sort + strict `better_than` gives a deterministic order even
    // among equal scores (insertion order breaks ties).
    population.sort_by(|a, b| {
        if a.1.better_than(&b.1) {
            std::cmp::Ordering::Less
        } else if b.1.better_than(&a.1) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyProblem;

    #[test]
    fn ea_lane_improves() {
        let p = ToyProblem::new(32, 4);
        let mut lane = EaLane::new(&p, 5, EaParams::default());
        let before = lane.best().1;
        for _ in 0..12 {
            lane.run_round(4_000);
        }
        let after = lane.best().1;
        assert!(after.cost <= before.cost);
        assert!(lane.offspring > 0);
    }

    #[test]
    fn population_stays_sorted_best_first() {
        let p = ToyProblem::new(24, 6);
        let mut lane = EaLane::new(&p, 9, EaParams::default());
        for _ in 0..6 {
            lane.run_round(1_000);
            for w in lane.population.windows(2) {
                assert!(!w[1].1.better_than(&w[0].1), "population out of order");
            }
        }
    }

    #[test]
    fn exchange_injects_strictly_better_solutions() {
        let p = ToyProblem::new(24, 6);
        let mut lane = EaLane::new(&p, 9, EaParams::default());
        let perfect = p.perfect();
        let score = p.score(&perfect);
        assert!(lane.on_exchange(&perfect, score));
        assert_eq!(lane.best().1.cost, 0.0);
        // A second, equal-quality exchange is a no-op.
        assert!(!lane.on_exchange(&perfect, score));
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = ToyProblem::new(24, 2);
        let run = |seed| {
            let mut lane = EaLane::new(&p, seed, EaParams::default());
            for _ in 0..5 {
                lane.run_round(2_000);
            }
            (lane.best().1.cost, lane.offspring)
        };
        assert_eq!(run(3), run(3));
    }
}
