//! A tiny self-contained [`SearchProblem`] used by this crate's own unit
//! and property tests (and handy as an implementation template).
//!
//! The problem: place `n` items on integer positions `0..range`,
//! minimising Σᵢ |pos\[i\] − target\[i\]| under the hard constraint that no
//! two items share a position (mirroring the stitcher's occupancy rule).
//! The optimum is usually the target vector itself.

use crate::problem::{Proposal, Score, SearchProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The toy placement problem (see module docs).
pub struct ToyProblem {
    n: usize,
    range: i64,
    targets: Vec<i64>,
}

/// Solution: one position per item, plus the occupancy set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ToySolution {
    /// Item positions.
    pub pos: Vec<i64>,
}

impl ToyProblem {
    /// `n` items on `0..4n`, targets scattered by `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let range = (n as i64) * 4;
        let mut rng = StdRng::seed_from_u64(seed);
        // Distinct targets so the optimum is conflict-free.
        let mut targets: Vec<i64> = Vec::with_capacity(n);
        while targets.len() < n {
            let t = rng.gen_range(0..range);
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        ToyProblem { n, range, targets }
    }

    /// The conflict-free optimum (cost 0): items on their targets.
    pub fn perfect(&self) -> ToySolution {
        ToySolution {
            pos: self.targets.clone(),
        }
    }

    fn occupied(&self, s: &ToySolution, p: i64, ignore: usize) -> bool {
        s.pos
            .iter()
            .enumerate()
            .any(|(i, &q)| i != ignore && q == p)
    }
}

impl SearchProblem for ToyProblem {
    type Solution = ToySolution;
    type Undo = (usize, i64);

    fn initial(&self, seed: u64) -> ToySolution {
        // Greedy scatter: each item takes the first free slot scanning
        // from a seeded random start — same shape as the stitcher's
        // greedy legalisation.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let start = rng.gen_range(0..self.range);
            let mut p = start;
            loop {
                if !pos.contains(&p) {
                    break;
                }
                p = (p + 1) % self.range;
            }
            pos.push(p);
        }
        ToySolution { pos }
    }

    fn score(&self, s: &ToySolution) -> Score {
        let cost = s
            .pos
            .iter()
            .zip(&self.targets)
            .map(|(&p, &t)| (p - t).abs() as f64)
            .sum();
        Score::feasible(cost)
    }

    fn propose(
        &self,
        s: &mut ToySolution,
        temp_ratio: f64,
        rng: &mut StdRng,
    ) -> Proposal<Self::Undo> {
        if self.n == 0 {
            return Proposal::Skip;
        }
        let i = rng.gen_range(0..self.n);
        // Range-limited step: hot = anywhere, cold = near the current
        // position.
        let window = ((temp_ratio * self.range as f64).max(2.0)) as i64;
        let step = rng.gen_range(-window..=window);
        let target = (s.pos[i] + step).rem_euclid(self.range);
        if target == s.pos[i] {
            return Proposal::Illegal;
        }
        if self.occupied(s, target, i) {
            return Proposal::Illegal;
        }
        let old = s.pos[i];
        let delta = ((target - self.targets[i]).abs() - (old - self.targets[i]).abs()) as f64;
        s.pos[i] = target;
        Proposal::Applied {
            delta,
            undo: (i, old),
        }
    }

    fn undo(&self, s: &mut ToySolution, (i, old): Self::Undo) {
        s.pos[i] = old;
    }

    fn neighborhood(&self) -> u64 {
        (self.n as u64) * 8
    }

    fn crossover(&self, a: &ToySolution, b: &ToySolution, rng: &mut StdRng) -> ToySolution {
        // Uniform crossover with conflict repair: take each gene from a
        // random parent; a colliding gene falls back to the other parent,
        // then to linear probing.
        let mut pos: Vec<i64> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let (first, second) = if rng.gen::<bool>() {
                (a.pos[i], b.pos[i])
            } else {
                (b.pos[i], a.pos[i])
            };
            let mut p = if !pos.contains(&first) {
                first
            } else if !pos.contains(&second) {
                second
            } else {
                first
            };
            while pos.contains(&p) {
                p = (p + 1) % self.range;
            }
            pos.push(p);
        }
        ToySolution { pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_invariants() {
        let p = ToyProblem::new(16, 1);
        let s = p.initial(5);
        let distinct: std::collections::HashSet<i64> = s.pos.iter().copied().collect();
        assert_eq!(distinct.len(), 16, "initial solution has collisions");
        assert_eq!(p.score(&p.perfect()).cost, 0.0);
    }

    #[test]
    fn propose_undo_roundtrips() {
        let p = ToyProblem::new(16, 2);
        let mut s = p.initial(7);
        let orig = s.clone();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            if let Proposal::Applied { undo, .. } = p.propose(&mut s, 1.0, &mut rng) {
                p.undo(&mut s, undo);
                assert_eq!(s, orig);
            }
        }
    }

    #[test]
    fn crossover_keeps_positions_distinct() {
        let p = ToyProblem::new(24, 3);
        let a = p.initial(1);
        let b = p.initial(2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let c = p.crossover(&a, &b, &mut rng);
            let distinct: std::collections::HashSet<i64> = c.pos.iter().copied().collect();
            assert_eq!(distinct.len(), 24);
        }
    }
}
