//! # tms-search — deadline-budgeted parallel metaheuristic portfolio
//!
//! The stitching step of the tailored-macro flow is a combinatorial
//! search: find the lowest-wirelength legal placement of replicated
//! macros. A single simulated-annealing run leaves two levers unused —
//! wall-clock parallelism and algorithmic diversity. This crate provides
//! both as a *portfolio*: N concurrent lanes (multi-seed simulated
//! annealing plus an evolutionary lane) race on the same
//! [`SearchProblem`], periodically exchanging their best results, and the
//! portfolio returns the best solution any lane ever visited.
//!
//! The lanes implement the classic machinery from the job-shop SA
//! literature and from RapidLayout's FPGA hard-block placer:
//!
//! * **Aarts/Van Laarhoven statistical initial temperature** — T₀ is
//!   estimated from sampled uphill move costs so a configured start
//!   acceptance ratio holds ([`SaParams::start_acceptance`]);
//! * **equilibrium-sized inner loops** — moves per temperature step scale
//!   with the problem's neighbourhood size
//!   ([`SearchProblem::neighborhood`]), per Van Laarhoven/Aarts/Lenstra;
//! * **Cruz-Chávez restart-on-stall** — a lane whose own best has not
//!   improved for [`SaParams::stall_rounds`] exchange rounds restarts
//!   from the portfolio's global best (the running upper bound) at a
//!   reheated temperature;
//! * **an evolutionary lane** — order-style crossover and mutation over
//!   solutions, elitist truncation selection, per RapidLayout.
//!
//! ## Determinism contract
//!
//! The portfolio is organised in *rounds* separated by barriers. Within a
//! round every lane runs independently on its own seeded RNG; all
//! cross-lane data flow (best-result exchange, win accounting, restart
//! decisions) happens sequentially at the barrier. Consequently the
//! outcome is a pure function of `(problem, seed, lane plan, rounds
//! actually run)` — **the same seed yields bit-identical results on 1
//! thread and on 64**. The wall-clock deadline can only end the run at a
//! round boundary, so a deadline-limited run equals a budget-limited run
//! of however many rounds fit; see `DESIGN.md` § "Search portfolio".
//!
//! ```
//! use tms_search::{run_portfolio, PortfolioConfig};
//! use tms_search::toy::ToyProblem;
//!
//! let problem = ToyProblem::new(64, 9);
//! let mut cfg = PortfolioConfig::new(7);
//! cfg.rounds = 4;
//! cfg.moves_per_round = 2_000;
//! let a = run_portfolio(&problem, &cfg);
//! cfg.threads = 8;
//! let b = run_portfolio(&problem, &cfg);
//! assert_eq!(a.best, b.best); // thread-count invariant
//! ```

#![warn(missing_docs)]

pub mod ea;
pub mod portfolio;
pub mod problem;
mod proptests;
pub mod sa;
pub mod toy;

pub use ea::{EaLane, EaParams};
pub use portfolio::{
    run_portfolio, run_portfolio_observed, LaneKind, LaneReport, PortfolioConfig, PortfolioOutcome,
};
pub use problem::{Proposal, Score, SearchProblem};
pub use sa::{SaLane, SaParams};

/// SplitMix64 step — the standard 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive lane `index`'s RNG seed from the portfolio seed.
///
/// Lanes must be decorrelated (a shared or offset-by-one seed would make
/// multi-seed SA pointless) yet reproducible from the single portfolio
/// seed. SplitMix64 over `seed ⊕ golden·(index+1)` gives 64 independent
/// streams per portfolio seed.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "lane seeds collide");
        // Stable across calls (pure function).
        assert_eq!(derive_seed(42, 3), seeds[3]);
        // Different portfolio seeds give different lane seeds.
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }
}
