//! The [`SearchProblem`] trait the portfolio drives.

use rand::rngs::StdRng;

/// Lexicographic solution quality: `infeasible` dominates `cost`.
///
/// A placement that leaves blocks unplaced must never beat one that
/// places everything, no matter the wirelength — so comparisons order by
/// the infeasibility count first and only then by cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Count of unmet hard requirements (e.g. unplaced instances).
    pub infeasible: u64,
    /// Cost to minimise among equally-feasible solutions.
    pub cost: f64,
}

impl Score {
    /// A fully feasible score with the given cost.
    pub fn feasible(cost: f64) -> Self {
        Score {
            infeasible: 0,
            cost,
        }
    }

    /// Strictly better: fewer infeasibilities, or equal infeasibilities
    /// and lower cost (beyond float noise).
    pub fn better_than(&self, other: &Score) -> bool {
        self.infeasible < other.infeasible
            || (self.infeasible == other.infeasible && self.cost < other.cost - 1e-12)
    }
}

/// Outcome of one [`SearchProblem::propose`] call.
pub enum Proposal<U> {
    /// A move was applied in place. `delta` is the cost change; `undo`
    /// reverts the move exactly if the caller rejects it.
    Applied {
        /// Cost change (negative = improvement).
        delta: f64,
        /// Token that [`SearchProblem::undo`] consumes to revert.
        undo: U,
    },
    /// A repair move was applied that must **not** be undone — e.g. an
    /// unplaced instance was legalised. Always accepted by the lanes:
    /// reducing infeasibility outranks any cost change.
    Committed {
        /// Cost change of the repair.
        delta: f64,
        /// Change in the infeasibility count (usually negative).
        infeasible_delta: i64,
    },
    /// The proposed target was illegal (e.g. occupied fabric); nothing
    /// changed. Counted by the lanes — illegal-move pressure is a
    /// convergence signal the paper's analysis leans on.
    Illegal,
    /// Nothing to propose (degenerate problem); nothing changed.
    Skip,
}

/// A combinatorial minimisation problem the portfolio lanes can drive.
///
/// Implementations are shared read-only across lanes (`Sync`); all
/// mutable search state lives in the `Solution`. Every method must be
/// deterministic given its inputs and the RNG stream — the portfolio's
/// thread-count-invariance contract rests on it.
pub trait SearchProblem: Sync {
    /// A complete candidate solution, owned by a lane.
    type Solution: Clone + Send;
    /// Token reverting one applied move.
    type Undo;

    /// Build a starting solution. Must be a pure function of `seed`.
    fn initial(&self, seed: u64) -> Self::Solution;

    /// Full quality of a solution. May recompute from scratch; lanes call
    /// it at initialisation, after crossover, and at checkpoints — not
    /// per move.
    fn score(&self, s: &Self::Solution) -> Score;

    /// Propose one neighbourhood move and apply it to `s`.
    ///
    /// `temp_ratio` ∈ (0, 1] is the lane's current temperature over its
    /// starting temperature; implementations may use it to range-limit
    /// move distance as the anneal cools (VPR-style).
    fn propose(
        &self,
        s: &mut Self::Solution,
        temp_ratio: f64,
        rng: &mut StdRng,
    ) -> Proposal<Self::Undo>;

    /// Revert a move previously applied by [`propose`](Self::propose).
    fn undo(&self, s: &mut Self::Solution, undo: Self::Undo);

    /// Approximate neighbourhood size, used to size the equilibrium inner
    /// loop (moves per temperature step), per Van Laarhoven/Aarts/Lenstra.
    fn neighborhood(&self) -> u64;

    /// Recombine two parents into an offspring (evolutionary lane).
    fn crossover(&self, a: &Self::Solution, b: &Self::Solution, rng: &mut StdRng)
        -> Self::Solution;

    /// Perturb `s` with roughly `strength` random accepted moves
    /// (evolutionary lane mutation). The default applies full-temperature
    /// proposals, keeping whatever lands legally.
    fn mutate(&self, s: &mut Self::Solution, strength: u32, rng: &mut StdRng) {
        let mut applied = 0;
        let mut attempts = 0;
        while applied < strength && attempts < strength * 8 {
            attempts += 1;
            match self.propose(s, 1.0, rng) {
                Proposal::Applied { .. } | Proposal::Committed { .. } => applied += 1,
                Proposal::Illegal => {}
                Proposal::Skip => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_ordering_is_lexicographic() {
        let placed_bad = Score {
            infeasible: 0,
            cost: 1e9,
        };
        let unplaced_good = Score {
            infeasible: 1,
            cost: 0.0,
        };
        assert!(placed_bad.better_than(&unplaced_good));
        assert!(!unplaced_good.better_than(&placed_bad));
        let a = Score::feasible(10.0);
        let b = Score::feasible(11.0);
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        // Float noise does not flip the order.
        let c = Score::feasible(10.0 + 1e-14);
        assert!(!c.better_than(&a));
        assert!(!a.better_than(&c));
    }
}
