//! The portfolio driver: N lanes, round barriers, deterministic
//! best-result exchange, deadline budgeting, telemetry.

use crate::derive_seed;
use crate::ea::{EaLane, EaParams};
use crate::problem::{Score, SearchProblem};
use crate::sa::{SaLane, SaParams};
use std::time::{Duration, Instant};
use tms_obs::{span, Phase, Recorder};

/// Portfolio configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioConfig {
    /// Portfolio seed. Lane seeds derive from it ([`derive_seed`]); the
    /// outcome is a pure function of `(problem, seed, lane plan, rounds
    /// run)` — identical for every thread count.
    pub seed: u64,
    /// Number of simulated-annealing lanes.
    pub sa_lanes: usize,
    /// Number of evolutionary lanes.
    pub ea_lanes: usize,
    /// Worker threads; `0` = one per available core. Affects wall-clock
    /// only, never results.
    pub threads: usize,
    /// Maximum exchange rounds.
    pub rounds: u32,
    /// Per-lane move budget per round.
    pub moves_per_round: u64,
    /// Optional wall-clock budget. Checked only at round barriers by the
    /// coordinator, so granularity (and overshoot tolerance) is one
    /// round; at least one round always runs.
    pub deadline: Option<Duration>,
    /// Stop early once this many consecutive rounds pass without any
    /// global-best improvement. `0` disables early stop.
    pub stall_stop: u32,
    /// SA lane parameters.
    pub sa: SaParams,
    /// EA lane parameters.
    pub ea: EaParams,
}

impl PortfolioConfig {
    /// Default portfolio: 3 SA lanes + 1 EA lane, 24 rounds of 4096
    /// moves per lane, early stop after 3 idle rounds, no deadline.
    pub fn new(seed: u64) -> Self {
        PortfolioConfig {
            seed,
            sa_lanes: 3,
            ea_lanes: 1,
            threads: 0,
            rounds: 24,
            moves_per_round: 4_096,
            deadline: None,
            stall_stop: 3,
            sa: SaParams::default(),
            ea: EaParams::default(),
        }
    }

    /// A single SA lane with no exchange — the ablation baseline.
    pub fn single(seed: u64) -> Self {
        PortfolioConfig {
            sa_lanes: 1,
            ea_lanes: 0,
            ..PortfolioConfig::new(seed)
        }
    }

    /// Set the wall-clock budget in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    fn lane_count(&self) -> usize {
        (self.sa_lanes + self.ea_lanes).max(1)
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// What kind of search a lane ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// Simulated annealing.
    Sa,
    /// Evolutionary search.
    Ea,
}

impl LaneKind {
    /// Short label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            LaneKind::Sa => "sa",
            LaneKind::Ea => "ea",
        }
    }
}

/// Per-lane accounting, reported by [`PortfolioOutcome`].
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// SA or EA.
    pub kind: LaneKind,
    /// The lane's derived RNG seed.
    pub seed: u64,
    /// Cost of the lane's initial solution.
    pub initial_cost: f64,
    /// Best score the lane itself reached.
    pub best_score: Score,
    /// Rounds in which this lane held the portfolio-wide best.
    pub wins: u32,
    /// Cruz-Chávez restarts taken (SA lanes).
    pub restarts: u64,
    /// Times the lane adopted the exchanged global best.
    pub adoptions: u64,
    /// Accepted moves (SA) — 0 for EA lanes.
    pub accepted: u64,
    /// Rejected moves (SA) — 0 for EA lanes.
    pub rejected: u64,
    /// Illegal (occupied-target) proposals.
    pub illegal: u64,
    /// Total move budget the lane consumed.
    pub moves: u64,
    /// Offspring evaluated (EA lanes).
    pub offspring: u64,
    /// Per-round temperature trajectory (SA lanes; empty for EA).
    pub temps: Vec<f64>,
}

/// Result of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome<S> {
    /// The best solution any lane visited.
    pub best: S,
    /// Its score.
    pub best_score: Score,
    /// Index of the lane that produced it.
    pub winner: usize,
    /// Exchange rounds actually run.
    pub rounds_run: u32,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Whether the deadline ended the run before the round budget.
    pub deadline_hit: bool,
    /// Whether the stall-stop rule ended the run.
    pub stalled_out: bool,
    /// Sum of every lane's consumed move budget.
    pub total_moves: u64,
    /// Exchange barriers executed.
    pub exchanges: u64,
    /// Global-best adoptions across all lanes.
    pub adoptions: u64,
    /// Per-lane reports, in lane order (SA lanes first, then EA).
    pub lanes: Vec<LaneReport>,
    /// Global best cost after each round, as `(cumulative moves, cost)`.
    pub trace: Vec<(u64, f64)>,
}

/// One lane: either kind, unified for the round driver.
enum Lane<'p, P: SearchProblem> {
    Sa(SaLane<'p, P>),
    Ea(EaLane<'p, P>),
}

impl<'p, P: SearchProblem> Lane<'p, P> {
    fn run_round(&mut self, budget: u64) {
        match self {
            Lane::Sa(l) => l.run_round(budget),
            Lane::Ea(l) => l.run_round(budget),
        }
    }

    fn best(&self) -> (&P::Solution, Score) {
        match self {
            Lane::Sa(l) => l.best(),
            Lane::Ea(l) => l.best(),
        }
    }

    fn on_exchange(&mut self, global: &P::Solution, score: Score) -> bool {
        match self {
            Lane::Sa(l) => l.on_exchange(global, score),
            Lane::Ea(l) => l.on_exchange(global, score),
        }
    }

    fn kind(&self) -> LaneKind {
        match self {
            Lane::Sa(_) => LaneKind::Sa,
            Lane::Ea(_) => LaneKind::Ea,
        }
    }
}

/// Run the lanes' current round, fanning out across up to `threads`
/// worker threads. Lanes never share mutable state, so any chunking
/// yields the same per-lane results — parallelism is invisible to the
/// outcome.
fn run_lanes_round<P: SearchProblem>(lanes: &mut [Lane<'_, P>], threads: usize, budget: u64) {
    if threads <= 1 || lanes.len() <= 1 {
        for lane in lanes {
            lane.run_round(budget);
        }
        return;
    }
    let chunk = lanes.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for lane_chunk in lanes.chunks_mut(chunk) {
            scope.spawn(move || {
                for lane in lane_chunk {
                    lane.run_round(budget);
                }
            });
        }
    });
}

/// Run the portfolio on `problem` (no telemetry).
pub fn run_portfolio<P: SearchProblem>(
    problem: &P,
    cfg: &PortfolioConfig,
) -> PortfolioOutcome<P::Solution> {
    run_portfolio_observed(problem, cfg, tms_obs::noop())
}

/// Run the portfolio, recording lane/exchange telemetry through `obs`:
/// a `stitch`-phase span (`search.portfolio`) plus the `search.*`
/// counters and observations (rounds, restarts, adoptions, per-kind lane
/// wins, best cost, final temperatures).
pub fn run_portfolio_observed<P: SearchProblem>(
    problem: &P,
    cfg: &PortfolioConfig,
    obs: &dyn Recorder,
) -> PortfolioOutcome<P::Solution> {
    let started = Instant::now();
    let mut sp = span(obs, Phase::Stitch, "search.portfolio");

    // Build the lane plan: SA lanes first, then EA lanes; seeds derive
    // from the portfolio seed by lane index.
    let sa_lanes = if cfg.sa_lanes + cfg.ea_lanes == 0 {
        1
    } else {
        cfg.sa_lanes
    };
    // Budget-aware equilibrium: when no explicit inner-loop length is
    // configured, size it so the planned per-lane budget spans a full
    // cooling trajectory (~60 temperature steps), never longer than the
    // problem's own equilibrium. A neighbourhood-sized inner loop that
    // exceeds the whole budget would otherwise leave the lane at T₀ for
    // its entire run.
    let mut sa_params = cfg.sa;
    if sa_params.inner_moves == 0 {
        let lane_budget = u64::from(cfg.rounds).saturating_mul(cfg.moves_per_round);
        let equilibrium = problem.neighborhood().clamp(64, 16_384);
        sa_params.inner_moves = (lane_budget / 60).clamp(32, equilibrium.max(32));
    }
    // One shared greedy base solution: for placement-sized problems,
    // construction costs more than an entire lane round, so every lane
    // starts from a clone and diverges through its own RNG stream (the
    // EA additionally mutates its population members).
    let base = problem.initial(cfg.seed);
    let mut lanes: Vec<Lane<'_, P>> = Vec::with_capacity(cfg.lane_count());
    for i in 0..sa_lanes {
        lanes.push(Lane::Sa(SaLane::with_initial(
            problem,
            derive_seed(cfg.seed, i as u64),
            sa_params,
            base.clone(),
        )));
    }
    for i in sa_lanes..sa_lanes + cfg.ea_lanes {
        lanes.push(Lane::Ea(EaLane::with_base(
            problem,
            derive_seed(cfg.seed, i as u64),
            cfg.ea,
            base.clone(),
        )));
    }

    let mut wins = vec![0u32; lanes.len()];
    let mut adoptions_per_lane = vec![0u64; lanes.len()];
    let initial_costs: Vec<f64> = lanes.iter().map(|l| l.best().1.cost).collect();

    // Global best starts from the best initial solution (deterministic
    // tie-break: lowest lane index).
    let (mut winner, mut global_score) = best_lane(&lanes);
    let mut global_best: P::Solution = lanes[winner].best().0.clone();

    let threads = cfg.resolved_threads();
    let mut trace: Vec<(u64, f64)> = vec![(0, global_score.cost)];
    let mut rounds_run = 0u32;
    let mut exchanges = 0u64;
    let mut total_adoptions = 0u64;
    let mut deadline_hit = false;
    let mut stalled_out = false;
    let mut idle_rounds = 0u32;
    let mut last_round_wall = Duration::ZERO;

    for _round in 0..cfg.rounds {
        // Deadline check (coordinator only, at the barrier): stop when
        // the budget is spent, or when another round like the last one
        // would clearly overshoot it. At least one round always runs.
        if let Some(deadline) = cfg.deadline {
            let elapsed = started.elapsed();
            if rounds_run > 0 && (elapsed >= deadline || elapsed + last_round_wall > deadline) {
                deadline_hit = true;
                break;
            }
        }
        let round_started = Instant::now();
        run_lanes_round(&mut lanes, threads, cfg.moves_per_round);
        last_round_wall = round_started.elapsed();
        rounds_run += 1;

        // Barrier: merge lane bests into the global best, sequentially
        // and deterministically.
        let (round_winner, round_score) = best_lane(&lanes);
        let improved = round_score.better_than(&global_score);
        if improved {
            global_score = round_score;
            global_best = lanes[round_winner].best().0.clone();
            winner = round_winner;
        }
        wins[winner] += 1;
        trace.push((
            rounds_run as u64 * cfg.moves_per_round * lanes.len() as u64,
            global_score.cost,
        ));

        // Exchange: every lane sees the same global best.
        exchanges += 1;
        for (i, lane) in lanes.iter_mut().enumerate() {
            if lane.on_exchange(&global_best, global_score) {
                adoptions_per_lane[i] += 1;
                total_adoptions += 1;
            }
        }

        idle_rounds = if improved { 0 } else { idle_rounds + 1 };
        if cfg.stall_stop > 0 && idle_rounds >= cfg.stall_stop {
            stalled_out = true;
            break;
        }
    }

    let reports: Vec<LaneReport> = lanes
        .iter()
        .enumerate()
        .map(|(i, lane)| {
            let (_, best_score) = lane.best();
            let mut r = LaneReport {
                kind: lane.kind(),
                seed: derive_seed(cfg.seed, i as u64),
                initial_cost: initial_costs[i],
                best_score,
                wins: wins[i],
                restarts: 0,
                adoptions: adoptions_per_lane[i],
                accepted: 0,
                rejected: 0,
                illegal: 0,
                moves: 0,
                offspring: 0,
                temps: Vec::new(),
            };
            match lane {
                Lane::Sa(l) => {
                    r.restarts = l.restarts;
                    r.accepted = l.accepted;
                    r.rejected = l.rejected;
                    r.illegal = l.illegal;
                    r.moves = l.moves;
                    r.temps = l.temps.clone();
                }
                Lane::Ea(l) => {
                    r.offspring = l.offspring;
                    r.moves = l.moves;
                }
            }
            r
        })
        .collect();

    let total_moves: u64 = reports.iter().map(|r| r.moves).sum();
    for r in &reports {
        obs.count(
            match r.kind {
                LaneKind::Sa => "search.lane.sa",
                LaneKind::Ea => "search.lane.ea",
            },
            1,
        );
        obs.count("search.restarts", r.restarts);
        obs.count("search.sa.accepted", r.accepted);
        obs.count("search.sa.rejected", r.rejected);
        obs.count("search.illegal", r.illegal);
        obs.count("search.ea.offspring", r.offspring);
        if let Some(&t) = r.temps.last() {
            obs.observe("search.lane.final_temp", t);
        }
    }
    obs.count("search.rounds", u64::from(rounds_run));
    obs.count("search.exchanges", exchanges);
    obs.count("search.adoptions", total_adoptions);
    obs.count("search.moves", total_moves);
    obs.count(
        match reports[winner].kind {
            LaneKind::Sa => "search.win.sa",
            LaneKind::Ea => "search.win.ea",
        },
        1,
    );
    if deadline_hit {
        obs.count("search.deadline_hit", 1);
    }
    obs.observe("search.best_cost", global_score.cost);
    sp.field("lanes", reports.len() as f64);
    sp.field("rounds", f64::from(rounds_run));
    sp.field("winner", winner as f64);
    sp.field("best_cost", global_score.cost);

    PortfolioOutcome {
        best: global_best,
        best_score: global_score,
        winner,
        rounds_run,
        wall: started.elapsed(),
        deadline_hit,
        stalled_out,
        total_moves,
        exchanges,
        adoptions: total_adoptions,
        lanes: reports,
        trace,
    }
}

/// Index and score of the best lane (ties: lowest index).
fn best_lane<P: SearchProblem>(lanes: &[Lane<'_, P>]) -> (usize, Score) {
    let mut winner = 0;
    let mut best = lanes[0].best().1;
    for (i, lane) in lanes.iter().enumerate().skip(1) {
        let s = lane.best().1;
        if s.better_than(&best) {
            best = s;
            winner = i;
        }
    }
    (winner, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyProblem;
    use std::time::Duration;

    fn quick_cfg(seed: u64) -> PortfolioConfig {
        PortfolioConfig {
            rounds: 6,
            moves_per_round: 2_000,
            stall_stop: 0,
            ..PortfolioConfig::new(seed)
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let p = ToyProblem::new(48, 9);
        let mut cfg = quick_cfg(13);
        cfg.threads = 1;
        let a = run_portfolio(&p, &cfg);
        cfg.threads = 8;
        let b = run_portfolio(&p, &cfg);
        assert_eq!(a.best, b.best, "thread count changed the best solution");
        assert_eq!(a.best_score.cost, b.best_score.cost);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.total_moves, b.total_moves);
        for (la, lb) in a.lanes.iter().zip(&b.lanes) {
            assert_eq!(la.accepted, lb.accepted);
            assert_eq!(la.restarts, lb.restarts);
            assert_eq!(la.temps, lb.temps);
        }
    }

    #[test]
    fn best_of_merge_is_no_worse_than_any_lane() {
        let p = ToyProblem::new(48, 2);
        let out = run_portfolio(&p, &quick_cfg(5));
        for lane in &out.lanes {
            assert!(
                !lane.best_score.better_than(&out.best_score),
                "portfolio best {:?} worse than a lane best {:?}",
                out.best_score,
                lane.best_score
            );
        }
        // And the returned solution really has the reported score.
        assert_eq!(p.score(&out.best).cost, out.best_score.cost);
    }

    #[test]
    fn deadline_is_respected_within_a_round() {
        let p = ToyProblem::new(64, 3);
        let cfg = PortfolioConfig {
            rounds: 10_000,
            moves_per_round: 2_000,
            stall_stop: 0,
            deadline: Some(Duration::from_millis(150)),
            ..PortfolioConfig::new(1)
        };
        let started = std::time::Instant::now();
        let out = run_portfolio(&p, &cfg);
        let wall = started.elapsed();
        assert!(out.deadline_hit, "deadline never fired");
        assert!(out.rounds_run >= 1);
        // Tolerance: the budget plus a couple of round times.
        assert!(
            wall < Duration::from_millis(1_500),
            "took {wall:?} against a 150ms budget"
        );
    }

    #[test]
    fn portfolio_beats_or_matches_single_lane() {
        let p = ToyProblem::new(64, 11);
        let single = run_portfolio(
            &p,
            &PortfolioConfig {
                sa_lanes: 1,
                ea_lanes: 0,
                ..quick_cfg(21)
            },
        );
        let full = run_portfolio(&p, &quick_cfg(21));
        assert!(
            full.best_score.cost <= single.best_score.cost + 1e-9,
            "portfolio {} worse than single lane {}",
            full.best_score.cost,
            single.best_score.cost
        );
    }

    #[test]
    fn stall_stop_ends_the_run_early() {
        let p = ToyProblem::new(8, 1);
        let cfg = PortfolioConfig {
            rounds: 500,
            moves_per_round: 4_000,
            stall_stop: 2,
            ..PortfolioConfig::new(3)
        };
        let out = run_portfolio(&p, &cfg);
        assert!(out.stalled_out, "tiny problem should converge and stall");
        assert!(out.rounds_run < 500);
    }

    #[test]
    fn telemetry_reconciles_with_the_outcome() {
        use tms_obs::AggregatingSink;
        let p = ToyProblem::new(32, 4);
        let sink = AggregatingSink::new();
        let out = run_portfolio_observed(&p, &quick_cfg(8), &sink);
        assert_eq!(sink.phase_spans(Phase::Stitch), 1);
        assert_eq!(sink.counter("search.rounds"), u64::from(out.rounds_run));
        assert_eq!(sink.counter("search.moves"), out.total_moves);
        assert_eq!(sink.counter("search.exchanges"), out.exchanges);
        assert_eq!(sink.counter("search.adoptions"), out.adoptions);
        assert_eq!(sink.counter("search.lane.sa"), 3);
        assert_eq!(sink.counter("search.lane.ea"), 1);
        assert_eq!(
            sink.counter("search.win.sa") + sink.counter("search.win.ea"),
            1
        );
        let (n, cost) = sink.observation("search.best_cost").unwrap();
        assert_eq!(n, 1);
        assert!((cost - out.best_score.cost).abs() < 1e-9);
    }

    #[test]
    fn zero_lanes_still_runs_one_sa_lane() {
        let p = ToyProblem::new(8, 2);
        let cfg = PortfolioConfig {
            sa_lanes: 0,
            ea_lanes: 0,
            rounds: 2,
            moves_per_round: 500,
            ..PortfolioConfig::new(1)
        };
        let out = run_portfolio(&p, &cfg);
        assert_eq!(out.lanes.len(), 1);
        assert_eq!(out.lanes[0].kind, LaneKind::Sa);
    }
}
