//! The simulated-annealing lane: statistical cooling, equilibrium inner
//! loops, restart-on-stall.

use crate::problem::{Proposal, Score, SearchProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SA lane parameters (shared by every SA lane of a portfolio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Target acceptance ratio χ₀ at the starting temperature. The
    /// Aarts/Van Laarhoven statistical rule sets T₀ = Δ̄⁺ / ln(1/χ₀)
    /// from sampled uphill deltas, so early search accepts roughly this
    /// fraction of worsening moves.
    pub start_acceptance: f64,
    /// Geometric cooling factor applied once per equilibrium inner loop.
    pub cooling: f64,
    /// Temperature floor, as a fraction of T₀.
    pub min_temp_ratio: f64,
    /// Exchange rounds without a lane-best improvement before the lane
    /// restarts from the portfolio's global best (Cruz-Chávez restart
    /// with the running upper bound). `0` disables restarts.
    pub stall_rounds: u32,
    /// Restart temperature, as a fraction of T₀.
    pub reheat: f64,
    /// Equilibrium inner-loop length: moves between cooling steps. `0`
    /// (the default) sizes it from the problem neighbourhood per Van
    /// Laarhoven/Aarts/Lenstra; set explicitly when the lane's total move
    /// budget is small relative to the neighbourhood, so the schedule
    /// still completes its cooling trajectory.
    pub inner_moves: u64,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            start_acceptance: 0.8,
            cooling: 0.92,
            min_temp_ratio: 1e-4,
            stall_rounds: 2,
            reheat: 0.35,
            inner_moves: 0,
        }
    }
}

/// Minimum moves between best-so-far solution clones (see
/// [`SaLane::run_round`]).
const SNAP_INTERVAL: u64 = 64;

/// One simulated-annealing lane of the portfolio.
pub struct SaLane<'p, P: SearchProblem> {
    problem: &'p P,
    rng: StdRng,
    params: SaParams,
    t0: f64,
    temp: f64,
    /// Equilibrium inner-loop length: moves between cooling steps, sized
    /// by the problem neighbourhood (Van Laarhoven/Aarts/Lenstra).
    inner: u64,
    step_in_temp: u64,
    current: P::Solution,
    current_score: Score,
    best: P::Solution,
    best_score: Score,
    /// Moves since the best-so-far snapshot was last cloned: rate-limits
    /// the (whole-solution) clone without missing rare late improvements.
    since_snap: u64,
    improved_this_round: bool,
    stall: u32,
    // Statistics the portfolio reports and exports through tms-obs.
    pub(crate) accepted: u64,
    pub(crate) rejected: u64,
    pub(crate) illegal: u64,
    pub(crate) moves: u64,
    pub(crate) restarts: u64,
    pub(crate) temps: Vec<f64>,
}

impl<'p, P: SearchProblem> SaLane<'p, P> {
    /// Build a lane: construct the seed's initial solution and estimate
    /// the starting temperature statistically.
    pub fn new(problem: &'p P, seed: u64, params: SaParams) -> Self {
        let current = problem.initial(seed);
        Self::with_initial(problem, seed, params, current)
    }

    /// Build a lane from an existing initial solution — the portfolio
    /// constructs one greedy solution and hands every lane a clone, since
    /// for placement-sized problems construction costs more than an
    /// entire lane round; lanes diverge through their seeded RNG streams.
    pub fn with_initial(problem: &'p P, seed: u64, params: SaParams, initial: P::Solution) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current = initial;
        let current_score = problem.score(&current);
        let t0 = estimate_t0(problem, &mut current, current_score, &mut rng, &params).max(1e-9);
        // Re-score: T₀ sampling undoes every probe, but a Committed
        // repair during probing would stick (none are expected from a
        // fresh greedy initial solution; stay robust anyway).
        let current_score = problem.score(&current);
        let inner = if params.inner_moves > 0 {
            params.inner_moves
        } else {
            problem.neighborhood().clamp(64, 16_384)
        };
        let best = current.clone();
        SaLane {
            problem,
            rng,
            params,
            t0,
            temp: t0,
            inner,
            step_in_temp: 0,
            current,
            best,
            best_score: current_score,
            current_score,
            since_snap: 0,
            improved_this_round: false,
            stall: 0,
            accepted: 0,
            rejected: 0,
            illegal: 0,
            moves: 0,
            restarts: 0,
            temps: Vec::new(),
        }
    }

    /// Run `budget` proposed moves (one portfolio round).
    ///
    /// Best-so-far snapshots are rate-limited: cloning the whole solution
    /// on every improvement would dominate the lane's wall-clock for
    /// placement-sized problems during the early descent, where nearly
    /// every accepted move improves on the best. Instead the snapshot is
    /// taken at most once per `SNAP_INTERVAL` moves, plus unconditionally
    /// after every feasibility repair and at round end.
    pub fn run_round(&mut self, budget: u64) {
        self.improved_this_round = false;
        for _ in 0..budget {
            self.moves += 1;
            self.since_snap += 1;
            let ratio = (self.temp / self.t0).clamp(0.0, 1.0);
            match self
                .problem
                .propose(&mut self.current, ratio, &mut self.rng)
            {
                Proposal::Applied { delta, undo } => {
                    let accept = delta <= 0.0 || self.rng.gen::<f64>() < (-delta / self.temp).exp();
                    if accept {
                        self.accepted += 1;
                        self.current_score.cost += delta;
                        if self.since_snap >= SNAP_INTERVAL {
                            self.checkpoint_best();
                        }
                    } else {
                        self.rejected += 1;
                        self.problem.undo(&mut self.current, undo);
                    }
                }
                Proposal::Committed {
                    delta,
                    infeasible_delta,
                } => {
                    self.accepted += 1;
                    self.current_score.cost += delta;
                    self.current_score.infeasible = self
                        .current_score
                        .infeasible
                        .saturating_add_signed(infeasible_delta);
                    // Feasibility repairs are rare and decisive: snapshot
                    // immediately so a repaired placement is never lost.
                    self.checkpoint_best();
                }
                Proposal::Illegal => self.illegal += 1,
                Proposal::Skip => break,
            }
            self.step_in_temp += 1;
            if self.step_in_temp >= self.inner {
                self.step_in_temp = 0;
                self.temp =
                    (self.temp * self.params.cooling).max(self.t0 * self.params.min_temp_ratio);
            }
        }
        self.checkpoint_best();
        self.temps.push(self.temp);
    }

    fn checkpoint_best(&mut self) {
        if self.current_score.better_than(&self.best_score) {
            self.best_score = self.current_score;
            self.best = self.current.clone();
            self.improved_this_round = true;
            self.since_snap = 0;
        }
    }

    /// Best solution this lane has visited.
    pub fn best(&self) -> (&P::Solution, Score) {
        (&self.best, self.best_score)
    }

    /// Exchange step, run at the round barrier: update the stall counter
    /// and, when stalled, restart from the portfolio's global best at a
    /// reheated temperature. Returns `true` if the lane adopted the
    /// global best.
    pub fn on_exchange(&mut self, global_best: &P::Solution, global_score: Score) -> bool {
        if self.improved_this_round {
            self.stall = 0;
            return false;
        }
        self.stall += 1;
        if self.params.stall_rounds == 0 || self.stall < self.params.stall_rounds {
            return false;
        }
        self.stall = 0;
        self.restarts += 1;
        self.temp = (self.t0 * self.params.reheat).max(self.t0 * self.params.min_temp_ratio);
        self.step_in_temp = 0;
        if global_score.better_than(&self.current_score) {
            self.current = global_best.clone();
            self.current_score = global_score;
            return true;
        }
        false
    }

    /// The lane's current temperature (for trajectories/reports).
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// The statistically estimated starting temperature.
    pub fn t0(&self) -> f64 {
        self.t0
    }
}

/// Probes sampled for the statistical initial temperature. 96 uphill
/// samples bound the estimate well enough; more probes measurably delay
/// lane start-up on placement-sized problems.
const T0_PROBES: u32 = 96;

/// Aarts/Van Laarhoven statistical initial temperature: sample proposals
/// from the initial solution, average the uphill deltas Δ̄⁺, and solve
/// χ₀ = exp(−Δ̄⁺/T₀) for T₀. Every probe is undone.
fn estimate_t0<P: SearchProblem>(
    problem: &P,
    s: &mut P::Solution,
    score: Score,
    rng: &mut StdRng,
    params: &SaParams,
) -> f64 {
    let mut uphill_sum = 0.0;
    let mut uphill_n = 0u32;
    let mut any_sum = 0.0;
    let mut any_n = 0u32;
    let _ = score;
    for _ in 0..T0_PROBES {
        match problem.propose(s, 1.0, rng) {
            Proposal::Applied { delta, undo } => {
                problem.undo(s, undo);
                any_sum += delta.abs();
                any_n += 1;
                if delta > 0.0 {
                    uphill_sum += delta;
                    uphill_n += 1;
                }
            }
            Proposal::Committed { .. } | Proposal::Illegal => {}
            Proposal::Skip => break,
        }
    }
    let chi = params.start_acceptance.clamp(0.01, 0.99);
    if uphill_n > 0 {
        (uphill_sum / f64::from(uphill_n)) / (1.0 / chi).ln()
    } else if any_n > 0 {
        // Downhill-only samples (already near-optimal start): scale from
        // the mean |Δ| instead.
        (any_sum / f64::from(any_n)) / (1.0 / chi).ln()
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::ToyProblem;

    #[test]
    fn sa_lane_improves_and_tracks_best() {
        let p = ToyProblem::new(48, 3);
        let mut lane = SaLane::new(&p, 11, SaParams::default());
        let before = lane.best().1;
        for _ in 0..6 {
            lane.run_round(4_000);
        }
        let after = lane.best().1;
        assert!(
            after.cost <= before.cost,
            "SA worsened: {} -> {}",
            before.cost,
            after.cost
        );
        assert!(lane.accepted > 0);
        assert_eq!(lane.moves, 24_000);
        assert_eq!(lane.temps.len(), 6);
        // Cooling is monotone non-increasing across rounds.
        assert!(lane.temps.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn statistical_t0_is_positive_and_scales() {
        let p = ToyProblem::new(32, 5);
        let lane = SaLane::new(&p, 1, SaParams::default());
        assert!(lane.t0() > 0.0);
    }

    #[test]
    fn stalled_lane_restarts_from_global_best() {
        let p = ToyProblem::new(32, 5);
        let params = SaParams {
            stall_rounds: 1,
            ..SaParams::default()
        };
        let mut lane = SaLane::new(&p, 3, params);
        // Converge the lane hard so rounds stop improving.
        for _ in 0..20 {
            lane.run_round(2_000);
        }
        // Hand it a strictly better global best: must adopt + reheat.
        let perfect = p.perfect();
        let score = p.score(&perfect);
        let t_before = lane.temperature();
        let mut adopted = false;
        for _ in 0..4 {
            lane.run_round(16);
            adopted |= lane.on_exchange(&perfect, score);
        }
        assert!(adopted, "stalled lane never adopted the global best");
        assert!(lane.restarts >= 1);
        assert!(lane.temperature() >= t_before, "restart did not reheat");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = ToyProblem::new(40, 7);
        let run = |seed| {
            let mut lane = SaLane::new(&p, seed, SaParams::default());
            for _ in 0..4 {
                lane.run_round(2_000);
            }
            (lane.best().1.cost, lane.accepted, lane.illegal)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
