//! Property tests: portfolio invariants over arbitrary toy problems.

#![cfg(test)]

use crate::portfolio::{run_portfolio, PortfolioConfig};
use crate::problem::SearchProblem;
use crate::toy::ToyProblem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The best-of merge never returns a result worse than any lane's
    /// best, the returned solution's score is genuine (recomputing it
    /// agrees), and the winner index is the lane that holds it.
    #[test]
    fn merge_never_worse_than_any_lane(
        n in 4usize..48,
        problem_seed in 0u64..1_000,
        seed in 0u64..1_000,
        sa_lanes in 1usize..4,
        ea_lanes in 0usize..2,
    ) {
        let p = ToyProblem::new(n, problem_seed);
        let cfg = PortfolioConfig {
            sa_lanes,
            ea_lanes,
            rounds: 3,
            moves_per_round: 600,
            stall_stop: 0,
            ..PortfolioConfig::new(seed)
        };
        let out = run_portfolio(&p, &cfg);
        prop_assert_eq!(out.lanes.len(), sa_lanes + ea_lanes);
        for (i, lane) in out.lanes.iter().enumerate() {
            prop_assert!(
                !lane.best_score.better_than(&out.best_score),
                "lane {} best {:?} beats portfolio best {:?}",
                i, lane.best_score, out.best_score
            );
        }
        // Reported score is the solution's true score.
        let rescored = p.score(&out.best);
        prop_assert!((rescored.cost - out.best_score.cost).abs() < 1e-6);
        prop_assert_eq!(rescored.infeasible, out.best_score.infeasible);
        // The winner's own best equals the portfolio best (it produced it).
        prop_assert!(!out.best_score.better_than(&out.lanes[out.winner].best_score));
    }

    /// Thread count never changes the outcome (the determinism contract),
    /// for arbitrary lane plans.
    #[test]
    fn thread_invariance(
        n in 4usize..32,
        seed in 0u64..500,
        threads in 2usize..9,
    ) {
        let p = ToyProblem::new(n, 7);
        let mut cfg = PortfolioConfig {
            rounds: 3,
            moves_per_round: 400,
            stall_stop: 0,
            ..PortfolioConfig::new(seed)
        };
        cfg.threads = 1;
        let a = run_portfolio(&p, &cfg);
        cfg.threads = threads;
        let b = run_portfolio(&p, &cfg);
        prop_assert_eq!(&a.best, &b.best);
        prop_assert_eq!(a.best_score.cost, b.best_score.cost);
        prop_assert_eq!(a.winner, b.winner);
        prop_assert_eq!(a.rounds_run, b.rounds_run);
    }
}
