//! The negotiated router.

use crate::grid::ChannelGrid;
use tms_device::Device;
use tms_stitch::{StitchProblem, StitchResult};

/// Router knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Horizontal tracks per routing cell.
    pub h_cap: u32,
    /// Vertical tracks per routing cell.
    pub v_cap: u32,
    /// Negotiation iterations before giving up.
    pub max_iterations: u32,
    /// History cost added to overused cells per iteration.
    pub history_increment: f64,
    /// Quadratic overuse penalty weight.
    pub pressure: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            h_cap: 36,
            v_cap: 36,
            max_iterations: 16,
            history_increment: 0.8,
            pressure: 4.0,
        }
    }
}

/// Outcome of routing a stitched design.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Whether every connection routed without channel overflow.
    pub fully_routed: bool,
    /// Negotiation iterations used.
    pub iterations: u32,
    /// Total occupied track-segments (wirelength × bus tracks).
    pub total_wirelength: u64,
    /// Overused cells remaining at the end.
    pub overflowed_cells: usize,
    /// Worst channel utilisation.
    pub peak_utilization: f64,
    /// Two-pin connections routed.
    pub routed_connections: usize,
    /// Nets skipped because fewer than two endpoints were placed.
    pub skipped_nets: usize,
    /// Coordinates and `(h, v)` usage of up to 16 overused cells, for
    /// congestion diagnostics.
    pub overflow_hotspots: Vec<(u32, u32, u32, u32)>,
}

/// One grid step of a routed path.
type Step = (u32, u32, bool); // (x, y, horizontal)

/// A two-pin connection: endpoints, bus tracks, current path.
///
/// The stored path excludes the two terminal cells: pins enter the macro
/// through dedicated taps, so only the wiring *between* the pin cells
/// consumes general routing tracks.
struct Connection {
    a: (u32, u32),
    b: (u32, u32),
    tracks: u32,
    path: Vec<Step>,
}

/// Pin location of a placed instance for its `k`-th incident connection.
///
/// Pins are spread along the macro's perimeter (as placed-and-routed macros
/// expose their ports), so heavily connected blocks do not funnel every
/// track through one cell.
fn pin_of(problem: &StitchProblem, placed: &StitchResult, inst: u32, k: u32) -> Option<(u32, u32)> {
    placed.positions[inst as usize].map(|(x, y)| {
        let b = problem.block_of(inst);
        let (w, h) = (b.width.max(1), b.height.max(1));
        let perimeter = 2 * (w + h);
        // Golden-ratio stride scatters consecutive pins far apart.
        let t = (u64::from(k).wrapping_mul(0x9E37_79B9) % u64::from(perimeter)) as u32;
        let (dx, dy) = if t < w {
            (t, 0) // bottom edge
        } else if t < w + h {
            (w - 1, t - w) // right edge
        } else if t < 2 * w + h {
            (2 * w + h - 1 - t, h - 1) // top edge
        } else {
            (0, perimeter - 1 - t) // left edge
        };
        (x + dx.min(w - 1), y + dy.min(h - 1))
    })
}

/// Cells of an L- or Z-path from `a` to `b` through vertical channel `xm`.
fn z_path(a: (u32, u32), b: (u32, u32), xm: u32) -> Vec<Step> {
    let mut steps = Vec::new();
    let h_run = |x0: u32, x1: u32, y: u32, steps: &mut Vec<Step>| {
        let (lo, hi) = (x0.min(x1), x0.max(x1));
        for x in lo..=hi {
            steps.push((x, y, true));
        }
    };
    let v_run = |y0: u32, y1: u32, x: u32, steps: &mut Vec<Step>| {
        let (lo, hi) = (y0.min(y1), y0.max(y1));
        for y in lo..=hi {
            steps.push((x, y, false));
        }
    };
    h_run(a.0, xm, a.1, &mut steps);
    v_run(a.1, b.1, xm, &mut steps);
    h_run(xm, b.0, b.1, &mut steps);
    steps
}

/// Cost of a candidate path under the current grid state.
fn path_cost(grid: &ChannelGrid, path: &[Step], pressure: f64) -> f64 {
    path.iter()
        .map(|&(x, y, h)| grid.cost(x, y, h, pressure))
        .sum()
}

fn occupy_path(grid: &mut ChannelGrid, path: &[Step], tracks: u32) {
    for _ in 0..tracks {
        for &(x, y, h) in path {
            grid.occupy(x, y, h);
        }
    }
}

fn release_path(grid: &mut ChannelGrid, path: &[Step], tracks: u32) {
    for _ in 0..tracks {
        for &(x, y, h) in path {
            grid.release(x, y, h);
        }
    }
}

/// Route one connection: pick the cheapest of the two L-shapes and three
/// Z-shapes under the negotiated cost, and occupy it.
fn route_connection(grid: &mut ChannelGrid, conn: &mut Connection, pressure: f64) {
    let (a, b) = (conn.a, conn.b);
    let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
    let mut candidates = vec![a.0, b.0];
    if hi > lo + 1 {
        candidates.push(lo + (hi - lo) / 4);
        candidates.push(lo + (hi - lo) / 2);
        candidates.push(lo + 3 * (hi - lo) / 4);
    }
    // Detour channels next to the endpoints: vertically aligned pins
    // (stacked instances of one module) would otherwise all fight for the
    // single straight column.
    let max_x = grid.width() - 1;
    for d in [1u32, 2, 4, 7] {
        candidates.push(lo.saturating_sub(d));
        candidates.push(hi.saturating_add(d).min(max_x));
    }
    let mut best: Option<(f64, Vec<Step>)> = None;
    for xm in candidates {
        let mut path = z_path(a, b, xm);
        // Terminal cells are dedicated pin taps, not channel wiring.
        path.retain(|&(x, y, _)| (x, y) != a && (x, y) != b);
        let cost = path_cost(grid, &path, pressure) * f64::from(conn.tracks);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, path));
        }
    }
    let (_, path) = best.expect("at least one candidate path");
    occupy_path(grid, &path, conn.tracks);
    conn.path = path;
}

/// [`route_stitched`] with telemetry: wraps the negotiation in a
/// `route`-phase span (connections, wirelength, iterations) and bumps the
/// `route.{connections,overflowed,iterations}` counters. The plain
/// [`route_stitched`] stays untouched for the many callers that record
/// nothing.
pub fn route_stitched_observed(
    device: &Device,
    problem: &StitchProblem,
    placed: &StitchResult,
    cfg: &RouterConfig,
    obs: &dyn tms_obs::Recorder,
) -> RouteReport {
    let mut sp = tms_obs::span(obs, tms_obs::Phase::Route, "global");
    let r = route_stitched(device, problem, placed, cfg);
    sp.field("routed_connections", r.routed_connections as f64);
    sp.field("wirelength", r.total_wirelength as f64);
    sp.field("iterations", f64::from(r.iterations));
    sp.field("fully_routed", f64::from(u8::from(r.fully_routed)));
    obs.count("route.connections", r.routed_connections as u64);
    obs.count("route.overflowed", r.overflowed_cells as u64);
    obs.count("route.iterations", u64::from(r.iterations));
    obs.observe("route.peak_utilization", r.peak_utilization);
    r
}

/// Route the inter-block nets of a stitched design.
pub fn route_stitched(
    device: &Device,
    problem: &StitchProblem,
    placed: &StitchResult,
    cfg: &RouterConfig,
) -> RouteReport {
    let mut grid = ChannelGrid::new(device.width(), device.rows(), cfg.h_cap, cfg.v_cap);

    // Decompose nets into chained two-pin connections over placed pins.
    let mut connections: Vec<Connection> = Vec::new();
    let mut skipped_nets = 0;
    // Per-instance incident-connection counter, to spread pins.
    let mut pin_counter: Vec<u32> = vec![0; problem.instances.len()];
    for net in &problem.nets {
        let mut pins: Vec<(u32, u32)> = net
            .endpoints
            .iter()
            .filter_map(|&e| {
                let k = pin_counter[e as usize];
                let p = pin_of(problem, placed, e, k);
                if p.is_some() {
                    pin_counter[e as usize] += 1;
                }
                p
            })
            .collect();
        if pins.len() < 2 {
            skipped_nets += 1;
            continue;
        }
        // Chain pins in scanline order for locality.
        pins.sort_unstable_by_key(|&(x, y)| (x, y));
        let tracks = (net.weight.round() as u32).clamp(1, 8);
        for pair in pins.windows(2) {
            connections.push(Connection {
                a: pair[0],
                b: pair[1],
                tracks,
                path: Vec::new(),
            });
        }
    }

    // Initial routing pass.
    for c in &mut connections {
        route_connection(&mut grid, c, cfg.pressure);
    }

    // Negotiation: rip up and reroute connections through overused cells.
    let mut iterations = 1;
    while grid.overflow_count() > 0 && iterations < cfg.max_iterations {
        grid.accumulate_history(cfg.history_increment);
        for conn in &mut connections {
            let through_overuse = conn.path.iter().any(|&(x, y, _)| grid.overused(x, y));
            if through_overuse {
                let old_path = std::mem::take(&mut conn.path);
                release_path(&mut grid, &old_path, conn.tracks);
                route_connection(&mut grid, conn, cfg.pressure);
            }
        }
        iterations += 1;
    }

    let total_wirelength: u64 = connections
        .iter()
        .map(|c| c.path.len() as u64 * u64::from(c.tracks))
        .sum();
    let overflowed_cells = grid.overflow_count();
    let overflow_hotspots = grid.overflow_hotspots(16);
    RouteReport {
        fully_routed: overflowed_cells == 0,
        iterations,
        total_wirelength,
        overflowed_cells,
        peak_utilization: grid.peak_utilization(),
        routed_connections: connections.len(),
        skipped_nets,
        overflow_hotspots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_stitch::{stitch, MacroBlock, StitchConfig};

    fn placed_chain(n: u32, weight: f64, seed: u64) -> (Device, StitchProblem, StitchResult) {
        let dev = Device::xc7z020();
        let blk = MacroBlock {
            name: "m".into(),
            signature: dev.signature(0, 3),
            width: 3,
            height: 10,
            used_slices: 24,
            irregularity: 0.2,
        };
        let mut p = StitchProblem::new(vec![blk]);
        let ids: Vec<u32> = (0..n).map(|_| p.add_instance(0)).collect();
        for pair in ids.windows(2) {
            p.add_net(pair, weight);
        }
        let r = stitch(&dev, &p, &StitchConfig::fast(seed));
        (dev, p, r)
    }

    #[test]
    fn simple_design_routes_fully() {
        let (dev, p, r) = placed_chain(20, 4.0, 1);
        let report = route_stitched(&dev, &p, &r, &RouterConfig::default());
        assert!(
            report.fully_routed,
            "overflow = {}",
            report.overflowed_cells
        );
        assert_eq!(report.routed_connections, 19);
        assert!(report.total_wirelength > 0);
        assert!(report.peak_utilization <= 1.0);
        assert_eq!(report.skipped_nets, 0);
    }

    #[test]
    fn observed_routing_matches_the_plain_call_and_records() {
        use tms_obs::{AggregatingSink, Phase};
        let (dev, p, r) = placed_chain(20, 4.0, 1);
        let sink = AggregatingSink::new();
        let observed = route_stitched_observed(&dev, &p, &r, &RouterConfig::default(), &sink);
        let plain = route_stitched(&dev, &p, &r, &RouterConfig::default());
        assert_eq!(observed.total_wirelength, plain.total_wirelength);
        assert_eq!(sink.phase_spans(Phase::Route), 1);
        assert_eq!(
            sink.counter("route.connections"),
            observed.routed_connections as u64
        );
        assert_eq!(
            sink.counter("route.iterations"),
            u64::from(observed.iterations)
        );
    }

    #[test]
    fn z_paths_connect_their_endpoints() {
        let path = z_path((2, 3), (7, 9), 5);
        assert!(path.contains(&(2, 3, true)));
        assert!(path.contains(&(7, 9, true)));
        assert!(path.contains(&(5, 6, false)));
        // Degenerate: same point.
        let p2 = z_path((4, 4), (4, 4), 4);
        assert!(!p2.is_empty());
    }

    #[test]
    fn scarce_channels_force_negotiation() {
        let (dev, p, r) = placed_chain(60, 8.0, 2);
        let scarce = RouterConfig {
            h_cap: 2,
            v_cap: 2,
            ..RouterConfig::default()
        };
        let report = route_stitched(&dev, &p, &r, &scarce);
        assert!(report.iterations > 1, "should need negotiation");
        let roomy = route_stitched(&dev, &p, &r, &RouterConfig::default());
        assert!(roomy.fully_routed);
        assert!(
            report.overflowed_cells >= roomy.overflowed_cells,
            "scarce {} vs roomy {}",
            report.overflowed_cells,
            roomy.overflowed_cells
        );
    }

    #[test]
    fn wirelength_tracks_net_weight() {
        let (dev, p, r) = placed_chain(10, 1.0, 3);
        let thin = route_stitched(&dev, &p, &r, &RouterConfig::default());
        let (dev2, p2, r2) = placed_chain(10, 6.0, 3);
        let wide = route_stitched(&dev2, &p2, &r2, &RouterConfig::default());
        assert!(wide.total_wirelength > thin.total_wirelength * 4);
    }

    #[test]
    fn unplaced_endpoints_are_skipped() {
        let dev = Device::xc7z020();
        let sig = tms_device::ColumnSignature(vec![tms_device::ColumnKind::Bram; 10]);
        let impossible = MacroBlock {
            name: "x".into(),
            signature: sig,
            width: 10,
            height: 10,
            used_slices: 0,
            irregularity: 0.0,
        };
        let ok = MacroBlock {
            name: "ok".into(),
            signature: dev.signature(0, 2),
            width: 2,
            height: 4,
            used_slices: 4,
            irregularity: 0.0,
        };
        let mut p = StitchProblem::new(vec![impossible, ok]);
        let a = p.add_instance(0);
        let b = p.add_instance(1);
        p.add_net(&[a, b], 2.0);
        let r = stitch(&dev, &p, &StitchConfig::fast(1));
        assert_eq!(r.unplaced_count, 1);
        let report = route_stitched(&dev, &p, &r, &RouterConfig::default());
        assert_eq!(report.skipped_nets, 1);
        assert_eq!(report.routed_connections, 0);
    }

    #[test]
    fn deterministic() {
        let (dev, p, r) = placed_chain(25, 3.0, 5);
        let a = route_stitched(&dev, &p, &r, &RouterConfig::default());
        let b = route_stitched(&dev, &p, &r, &RouterConfig::default());
        assert_eq!(a.total_wirelength, b.total_wirelength);
        assert_eq!(a.iterations, b.iterations);
    }
}
