//! The channel grid: per-cell horizontal/vertical track bookkeeping.

/// Usage counters of one routing cell.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelUsage {
    /// Horizontal tracks in use.
    pub h: u32,
    /// Vertical tracks in use.
    pub v: u32,
    /// Accumulated history cost (PathFinder negotiation).
    pub history: f64,
}

/// A `width × height` grid of routing cells with uniform capacities.
#[derive(Debug, Clone)]
pub struct ChannelGrid {
    width: u32,
    height: u32,
    h_cap: u32,
    v_cap: u32,
    cells: Vec<ChannelUsage>,
}

impl ChannelGrid {
    /// An empty grid.
    pub fn new(width: u32, height: u32, h_cap: u32, v_cap: u32) -> Self {
        ChannelGrid {
            width,
            height,
            h_cap,
            v_cap,
            cells: vec![ChannelUsage::default(); (width * height) as usize],
        }
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) as usize
    }

    /// Usage of one cell.
    pub fn usage(&self, x: u32, y: u32) -> ChannelUsage {
        self.cells[self.idx(x, y)]
    }

    /// Negotiated cost of crossing cell `(x, y)` in the given direction:
    /// base 1, plus history, plus a quadratic penalty once the channel is
    /// at or beyond capacity.
    pub fn cost(&self, x: u32, y: u32, horizontal: bool, pressure: f64) -> f64 {
        let u = self.cells[self.idx(x, y)];
        let (used, cap) = if horizontal {
            (u.h, self.h_cap)
        } else {
            (u.v, self.v_cap)
        };
        let over = (used + 1).saturating_sub(cap) as f64;
        1.0 + u.history + pressure * over * over
    }

    /// Occupy one track through the cell.
    pub fn occupy(&mut self, x: u32, y: u32, horizontal: bool) {
        let i = self.idx(x, y);
        if horizontal {
            self.cells[i].h += 1;
        } else {
            self.cells[i].v += 1;
        }
    }

    /// Release one track through the cell.
    pub fn release(&mut self, x: u32, y: u32, horizontal: bool) {
        let i = self.idx(x, y);
        if horizontal {
            self.cells[i].h = self.cells[i].h.saturating_sub(1);
        } else {
            self.cells[i].v = self.cells[i].v.saturating_sub(1);
        }
    }

    /// Whether the cell is overused in either direction.
    pub fn overused(&self, x: u32, y: u32) -> bool {
        let u = self.cells[self.idx(x, y)];
        u.h > self.h_cap || u.v > self.v_cap
    }

    /// Add history cost to every currently-overused cell (end of a
    /// negotiation iteration).
    pub fn accumulate_history(&mut self, increment: f64) -> usize {
        let mut over = 0;
        let (h_cap, v_cap) = (self.h_cap, self.v_cap);
        for c in &mut self.cells {
            if c.h > h_cap || c.v > v_cap {
                c.history += increment;
                over += 1;
            }
        }
        over
    }

    /// Coordinates and usage of overused cells (up to `limit`).
    pub fn overflow_hotspots(&self, limit: usize) -> Vec<(u32, u32, u32, u32)> {
        let mut out = Vec::new();
        'outer: for y in 0..self.height {
            for x in 0..self.width {
                let u = self.cells[self.idx(x, y)];
                if u.h > self.h_cap || u.v > self.v_cap {
                    out.push((x, y, u.h, u.v));
                    if out.len() >= limit {
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// Number of overused cells.
    pub fn overflow_count(&self) -> usize {
        let (h_cap, v_cap) = (self.h_cap, self.v_cap);
        self.cells
            .iter()
            .filter(|c| c.h > h_cap || c.v > v_cap)
            .count()
    }

    /// Peak utilisation over all cells: `max(used / cap)` per direction.
    pub fn peak_utilization(&self) -> f64 {
        let mut peak = 0.0f64;
        for c in &self.cells {
            peak = peak.max(f64::from(c.h) / f64::from(self.h_cap.max(1)));
            peak = peak.max(f64::from(c.v) / f64::from(self.v_cap.max(1)));
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_release_roundtrip() {
        let mut g = ChannelGrid::new(4, 4, 2, 2);
        g.occupy(1, 2, true);
        g.occupy(1, 2, true);
        g.occupy(1, 2, false);
        assert_eq!(g.usage(1, 2).h, 2);
        assert_eq!(g.usage(1, 2).v, 1);
        assert!(!g.overused(1, 2));
        g.occupy(1, 2, true);
        assert!(g.overused(1, 2));
        g.release(1, 2, true);
        assert!(!g.overused(1, 2));
        // Releasing an empty cell saturates at zero.
        g.release(0, 0, false);
        assert_eq!(g.usage(0, 0).v, 0);
    }

    #[test]
    fn cost_grows_with_congestion_and_history() {
        let mut g = ChannelGrid::new(2, 2, 1, 1);
        let base = g.cost(0, 0, true, 5.0);
        assert_eq!(base, 1.0);
        g.occupy(0, 0, true); // at capacity: next track overflows
        assert!(g.cost(0, 0, true, 5.0) > base);
        let over = g.accumulate_history(0.5);
        assert_eq!(over, 0, "at capacity is not over capacity");
        g.occupy(0, 0, true);
        assert_eq!(g.accumulate_history(0.5), 1);
        assert!(g.cost(0, 0, true, 5.0) > 6.0);
    }

    #[test]
    fn peak_utilization_tracks_worst_cell() {
        let mut g = ChannelGrid::new(3, 3, 4, 4);
        assert_eq!(g.peak_utilization(), 0.0);
        g.occupy(2, 2, false);
        g.occupy(2, 2, false);
        assert!((g.peak_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(g.overflow_count(), 0);
    }
}
