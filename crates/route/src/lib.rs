//! # tms-route — negotiated global routing of stitched designs
//!
//! The last step of the RapidWright flow "connects [the placed macros] to
//! obtain a full bitstream". This crate models that inter-block routing
//! stage with a PathFinder-style negotiated global router on a coarse
//! channel grid:
//!
//! * the fabric is a grid of routing cells, each with a horizontal and a
//!   vertical track capacity ([`RouterConfig`]);
//! * every inter-block net becomes a set of two-pin connections (a chain
//!   over its pins, sorted for locality), each routed as an L-shape or a
//!   Z-shape through the cheaper channel;
//! * congestion is negotiated: overused cells accumulate history cost and
//!   their nets are ripped up and rerouted until no cell is overused or the
//!   iteration budget runs out.
//!
//! The router quantifies the paper's Section V-D observation at design
//! scale: tighter, more regular macro placements leave more contiguous
//! channel capacity, so the same net set routes with less wirelength and
//! less overflow (see the `routing` integration test and the
//! estimator-impact claims).
//!
//! ```
//! use tms_device::Device;
//! use tms_stitch::{stitch, MacroBlock, StitchProblem, StitchConfig};
//! use tms_route::{route_stitched, RouterConfig};
//!
//! let dev = Device::xc7z020();
//! let blk = MacroBlock { name: "b".into(), signature: dev.signature(0, 3),
//!                        width: 3, height: 10, used_slices: 25, irregularity: 0.1 };
//! let mut p = StitchProblem::new(vec![blk]);
//! let a = p.add_instance(0);
//! let b = p.add_instance(0);
//! p.add_net(&[a, b], 4.0);
//! let placed = stitch(&dev, &p, &StitchConfig::fast(1));
//! let report = route_stitched(&dev, &p, &placed, &RouterConfig::default());
//! assert!(report.fully_routed);
//! assert!(report.total_wirelength > 0);
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod router;

pub use grid::{ChannelGrid, ChannelUsage};
pub use router::{route_stitched, route_stitched_observed, RouteReport, RouterConfig};
