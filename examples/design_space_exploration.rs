//! Design-space exploration: the paper's motivating scenario (Section III).
//!
//! During DSE, the user tweaks one layer of the network and recompiles.
//! With a flow built on pre-implemented blocks, only *changed* unique
//! modules must be re-implemented — the remaining placed-and-routed macros
//! are reused and just re-stitched. This example builds a small custom
//! network, widens one layer, and compares the full-recompile tool-run cost
//! against the incremental one.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use tailored_macro_sizes::cnn::{synth_module, CnvDesign, CnvModule, ModuleRole};
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::flow::{run_rw_flow_cached, CfPolicy, ImplementationCache, RwFlowConfig};
use tailored_macro_sizes::pblock::CfSearch;
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::stitch::StitchConfig;

/// Build a 3-layer toy CNN block design; `l2_pe` is the number of parallel
/// MVAU processing elements in layer 2 — the DSE knob.
fn toy_network(l2_pe: u32, seed: u64) -> CnvDesign {
    let mut modules = Vec::new();
    let mut instances = Vec::new();
    let mut nets: Vec<(Vec<u32>, f64)> = Vec::new();

    let add = |modules: &mut Vec<CnvModule>,
               instances: &mut Vec<(usize, String)>,
               name: &str,
               role: ModuleRole,
               layer: u32,
               target: u32,
               count: u32|
     -> Vec<u32> {
        let idx = modules.len();
        modules.push(CnvModule {
            name: name.to_string(),
            role,
            layer,
            netlist: synth_module(role, target, name, seed ^ idx as u64),
            instances: count,
            mem: None,
        });
        (0..count)
            .map(|i| {
                let id = instances.len() as u32;
                instances.push((idx, format!("{name}[{i}]")));
                id
            })
            .collect()
    };

    let mut prev: Option<u32> = None;
    for layer in 1..=3u32 {
        let pe = if layer == 2 { l2_pe } else { 4 };
        let swu = add(
            &mut modules,
            &mut instances,
            &format!("swu_l{layer}"),
            ModuleRole::SlidingWindow,
            layer,
            60,
            1,
        );
        let mvaus = add(
            &mut modules,
            &mut instances,
            // The layer-2 MVAU configuration depends on the PE count, so
            // changing `l2_pe` creates a *different* unique module.
            &format!("mvau_l{layer}_pe{pe}"),
            ModuleRole::Mvau,
            layer,
            640 / pe,
            pe,
        );
        let w = add(
            &mut modules,
            &mut instances,
            &format!("weights_l{layer}"),
            ModuleRole::Weights,
            layer,
            200,
            1,
        );
        let act = add(
            &mut modules,
            &mut instances,
            &format!("act_l{layer}"),
            ModuleRole::Activation,
            layer,
            24,
            1,
        );
        if let Some(p) = prev {
            nets.push((vec![p, swu[0]], 8.0));
        }
        let mut fan = vec![swu[0]];
        fan.extend(&mvaus);
        nets.push((fan, 8.0));
        for &m in &mvaus {
            nets.push((vec![w[0], m], 16.0));
        }
        let mut coll = mvaus.clone();
        coll.push(act[0]);
        nets.push((coll, 4.0));
        prev = Some(act[0]);
    }
    CnvDesign {
        modules,
        instances,
        nets,
    }
}

fn main() {
    let dev = Device::xc7z020();
    let cfg = |seed| RwFlowConfig {
        policy: CfPolicy::Minimal(CfSearch::wide()),
        use_shape_report: true,
        model: PlacementModel::default(),
        stitch: StitchConfig::standard(seed),
        portfolio: None,
        mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
        obs: tailored_macro_sizes::obs::noop(),
        seed,
    };

    // Baseline compile of the initial architecture (4 PEs in layer 2),
    // filling the implementation cache.
    let mut cache = ImplementationCache::new();
    let v1 = toy_network(4, 11);
    let r1 = run_rw_flow_cached(&v1, &dev, &cfg(11), &mut cache);
    println!(
        "v1 (l2 = 4 PEs): {} unique modules, {} tool runs, {} blocks placed",
        v1.unique_count(),
        r1.tool_runs_spent,
        r1.result.stitch.placed_count
    );

    // DSE step: widen layer 2 to 8 PEs. The MVAU configuration changes, so
    // only that one unique module misses the cache.
    let v2 = toy_network(8, 11);
    let r2 = run_rw_flow_cached(&v2, &dev, &cfg(11), &mut cache);
    println!(
        "v2 (l2 = 8 PEs): {} unique modules, {} reused from cache, {} fresh",
        v2.unique_count(),
        r2.reused,
        r2.fresh
    );
    println!(
        "incremental recompile: {} tool runs instead of {} ({:.1}x fewer)",
        r2.tool_runs_spent,
        r2.result.total_tool_runs,
        f64::from(r2.result.total_tool_runs) / f64::from(r2.tool_runs_spent.max(1))
    );
    println!(
        "re-stitched {} blocks; final cost {:.0} (cache: {} hits / {} misses)",
        r2.result.stitch.placed_count,
        r2.result.stitch.final_cost,
        cache.hits(),
        cache.misses()
    );
}
