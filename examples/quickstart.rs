//! Quickstart: train a correction-factor estimator and compile the
//! cnvW1A1 network with estimator-tailored PBlocks.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::MacroSizingFlow;

fn main() {
    // 1. A flow targeting the xc7z045 (the paper's Section VIII part).
    //    The defaults follow the paper: random-forest estimator on the
    //    relative "Additional" features. We shrink the training sweep so
    //    the example runs in seconds; drop `with_dataset_size` for the
    //    full 2,000-module set.
    let flow = MacroSizingFlow::new(Device::xc7z045())
        .with_dataset_size(600)
        .with_seed(7);

    // 2. Generate the synthetic RTL data set, label every module with its
    //    minimal feasible correction factor, and train the estimator.
    println!("training the correction-factor estimator ...");
    let trained = flow.train();

    // 3. Build the cnvW1A1 block design: 175 block instances of 74 unique
    //    modules (MVAUs, sliding windows, activations, pools, weights).
    let design = cnvw1a1(7);
    println!(
        "design: {} instances of {} unique modules",
        design.instance_count(),
        design.unique_count()
    );

    // 4. Compile: per-module PBlocks sized by the estimator (with the
    //    +0.1 / 0.02 recovery of Section VIII), then SA stitching.
    println!("compiling with estimator-tailored PBlocks ...");
    let result = flow.compile(&design, &trained);

    println!();
    println!(
        "pre-implemented {} modules in {} tool runs ({}% first-try)",
        result.implemented.len(),
        result.total_tool_runs,
        (result.first_try_rate() * 100.0).round()
    );
    println!(
        "stitched {} of {} blocks; final wirelength cost {:.0} (from {:.0})",
        result.stitch.placed_count,
        result.problem.instances.len(),
        result.stitch.final_cost,
        result.stitch.initial_cost
    );
    if let Some(w14) = result.module("weights_14") {
        println!(
            "largest block weights_14: CF {:.2}, {} slices, longest path {:.2} ns",
            w14.cf, w14.placement.used_slices, w14.timing.longest_path_ns
        );
    }
}
