//! Compare the four estimator families head-to-head on one data set,
//! including training time, accuracy, and the tool runs they save in the
//! guided search — a compact version of the paper's Sections VII-VIII.
//!
//! ```sh
//! cargo run --release --example estimator_comparison -- 800
//! ```

use std::time::Instant;
use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::estimator::{
    build_dataset, to_ml_dataset, CfEstimator, EstimatorKind, FeatureSet, LabelConfig,
};
use tailored_macro_sizes::flow::{run_rw_flow, CfPolicy, RwFlowConfig};
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::rtlgen::{standard_sweep, SweepConfig};
use tailored_macro_sizes::stitch::StitchConfig;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let seed = 42;
    let dev = Device::xc7z020();

    println!("labelling a {n}-module sweep ...");
    let modules = standard_sweep(
        &SweepConfig {
            target_modules: n,
            max_luts: 5_000,
            min_luts: 2,
        },
        seed,
    );
    let labelled = build_dataset(&modules, &dev, &LabelConfig::default());
    let ds = to_ml_dataset(&labelled, FeatureSet::All).cap_per_bin(0.02, 75 * n / 2000 + 5, seed);
    let (train, test) = ds.split(0.8, seed);
    println!("{} train / {} test samples\n", train.len(), test.len());

    let design = cnvw1a1(seed);
    println!(
        "{:<18} | {:>8} | {:>9} | {:>9} | {:>9} | {:>10}",
        "estimator", "fit (ms)", "mean err", "med err", "tool runs", "first-try"
    );
    for kind in [
        EstimatorKind::LinearRegression,
        EstimatorKind::DecisionTree,
        EstimatorKind::RandomForest,
        EstimatorKind::NeuralNetwork,
    ] {
        let t0 = Instant::now();
        let est = CfEstimator::train(kind, &train, seed);
        let fit_ms = t0.elapsed().as_millis();
        let mean = est.mean_relative_error(&test);
        let med = est.median_relative_error(&test);

        // Drive the guided flow on the cnvW1A1 with this estimator.
        let preds: std::collections::HashMap<String, f64> = design
            .modules
            .iter()
            .map(|m| {
                let stats = m.netlist.stats();
                let packing = tailored_macro_sizes::synth::pack(&stats);
                let shape = tailored_macro_sizes::place::quick_place(&stats, &packing);
                let f = tailored_macro_sizes::estimator::ModuleFeatures::extract(
                    &stats, &packing, &shape,
                );
                (
                    m.name.clone(),
                    est.predict(&f.select(FeatureSet::All)).max(0.5),
                )
            })
            .collect();
        let predict = |name: &str| preds.get(name).copied().unwrap_or(1.0);
        let flow = run_rw_flow(
            &design,
            &dev,
            &RwFlowConfig {
                policy: CfPolicy::Guided {
                    predict: &predict,
                    max_cf: 3.0,
                },
                use_shape_report: true,
                model: PlacementModel::default(),
                stitch: StitchConfig::fast(seed),
                portfolio: None,
                mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
                seed,
                obs: tailored_macro_sizes::obs::noop(),
            },
        );
        println!(
            "{:<18} | {:>8} | {:>8.1}% | {:>8.1}% | {:>9} | {:>9.0}%",
            kind.label(),
            fit_ms,
            mean * 100.0,
            med * 100.0,
            flow.total_tool_runs,
            flow.first_try_rate() * 100.0
        );
    }
}
