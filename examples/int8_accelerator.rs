//! An INT8 CNN accelerator as a custom block design: beyond the binarised
//! cnvW1A1, fixed-point networks map their MACs onto DSP48 slices with
//! BRAM-resident weights. This example assembles such a design from the
//! DSP-pipeline generator, runs the full pre-implement → stitch → route
//! flow on the xc7z100, and shows how hard-block columns constrain PBlock
//! relocation (far fewer legal anchors than LUT-only macros).
//!
//! ```sh
//! cargo run --release --example int8_accelerator
//! ```

use tailored_macro_sizes::cnn::{synth_module, CnvDesign, CnvModule, ModuleRole};
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::flow::{run_rw_flow, CfPolicy, RwFlowConfig};
use tailored_macro_sizes::netlist::Netlist;
use tailored_macro_sizes::pblock::CfSearch;
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::route::{route_stitched, RouterConfig};
use tailored_macro_sizes::rtlgen::{DspPipeParams, Generator};
use tailored_macro_sizes::stitch::StitchConfig;

/// Build the INT8 design: per layer, a DSP MAC array plus the usual
/// sliding-window and activation blocks.
fn int8_network(layers: u32, lanes_per_layer: u32, seed: u64) -> CnvDesign {
    let mut modules: Vec<CnvModule> = Vec::new();
    let mut instances: Vec<(usize, String)> = Vec::new();
    let mut nets: Vec<(Vec<u32>, f64)> = Vec::new();

    let add = |modules: &mut Vec<CnvModule>,
               instances: &mut Vec<(usize, String)>,
               name: String,
               role: ModuleRole,
               layer: u32,
               netlist: Netlist,
               count: u32|
     -> Vec<u32> {
        let idx = modules.len();
        modules.push(CnvModule {
            name: name.clone(),
            role,
            layer,
            netlist,
            instances: count,
            mem: None,
        });
        (0..count)
            .map(|i| {
                let id = instances.len() as u32;
                instances.push((idx, format!("{name}[{i}]")));
                id
            })
            .collect()
    };

    let mut prev: Option<u32> = None;
    for layer in 1..=layers {
        let swu = add(
            &mut modules,
            &mut instances,
            format!("swu_l{layer}"),
            ModuleRole::SlidingWindow,
            layer,
            synth_module(
                ModuleRole::SlidingWindow,
                80,
                &format!("swu_l{layer}"),
                seed ^ u64::from(layer),
            ),
            1,
        );
        // One unique MAC array per layer, replicated across output-channel
        // groups — DSP reuse is where the block flow pays off for INT8.
        let mac_name = format!("mac_l{layer}");
        let mac_netlist = DspPipeParams {
            lanes: 8,
            stages: 3,
            coeffs: 1_024,
        }
        .generate(seed ^ (u64::from(layer) << 8))
        .with_name(&mac_name);
        let macs = add(
            &mut modules,
            &mut instances,
            mac_name,
            ModuleRole::Mvau,
            layer,
            mac_netlist,
            lanes_per_layer,
        );
        let act = add(
            &mut modules,
            &mut instances,
            format!("act_l{layer}"),
            ModuleRole::Activation,
            layer,
            synth_module(
                ModuleRole::Activation,
                30,
                &format!("act_l{layer}"),
                seed ^ (u64::from(layer) << 16),
            ),
            1,
        );
        if let Some(p) = prev {
            nets.push((vec![p, swu[0]], 8.0));
        }
        let mut fan = vec![swu[0]];
        fan.extend(&macs);
        nets.push((fan, 8.0));
        let mut coll = macs.clone();
        coll.push(act[0]);
        nets.push((coll, 4.0));
        prev = Some(act[0]);
    }
    CnvDesign {
        modules,
        instances,
        nets,
    }
}

fn main() {
    let dev = Device::xc7z100();
    let design = int8_network(6, 4, 31);
    println!(
        "INT8 accelerator: {} instances of {} unique modules on {}",
        design.instance_count(),
        design.unique_count(),
        dev.name()
    );
    let dsp_total: u32 = design
        .modules
        .iter()
        .map(|m| m.netlist.stats().counts.dsp48 * m.instances)
        .sum();
    println!("total DSP48 demand: {dsp_total} of {}", dev.dsp_count());

    let flow = run_rw_flow(
        &design,
        &dev,
        &RwFlowConfig {
            policy: CfPolicy::Minimal(CfSearch::wide()),
            use_shape_report: true,
            model: PlacementModel::default(),
            stitch: StitchConfig {
                max_moves: 40_000,
                ..StitchConfig::standard(31)
            },
            portfolio: None,
            mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
            seed: 31,
            obs: tailored_macro_sizes::obs::noop(),
        },
    );
    println!(
        "pre-implemented {} modules in {} tool runs; {} blocks placed, {} unplaced",
        flow.implemented.len(),
        flow.total_tool_runs,
        flow.stitch.placed_count,
        flow.stitch.unplaced_count
    );
    // DSP/BRAM macros can only anchor where the column signature repeats.
    if let Some(mac) = flow.module("mac_l1") {
        let anchors = dev.matching_anchors(&mac.pblock.signature);
        println!(
            "mac_l1 PBlock {}x{} (signature {}): {} legal anchor columns",
            mac.pblock.rect.w,
            mac.pblock.rect.h,
            mac.pblock.signature,
            anchors.len()
        );
    }
    let route = route_stitched(&dev, &flow.problem, &flow.stitch, &RouterConfig::default());
    println!(
        "routing: {} connections, wirelength {}, fully routed: {}",
        route.routed_connections, route.total_wirelength, route.fully_routed
    );
}
