//! Walk the Zynq-7000 family and find the smallest part on which the
//! RapidWright-style flow fully places the cnvW1A1 — the "use a larger
//! FPGA" escape hatch Section III calls sub-optimal during DSE, made
//! cheap to evaluate.
//!
//! ```sh
//! cargo run --release --example device_ladder
//! ```

use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::flow::{
    run_amd_flow, run_rw_flow, AmdFlowConfig, CfPolicy, RwFlowConfig,
};
use tailored_macro_sizes::pblock::CfSearch;
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::stitch::StitchConfig;

fn main() {
    let design = cnvw1a1(7);
    println!(
        "design: {} instances / {} unique modules\n",
        design.instance_count(),
        design.unique_count()
    );
    println!(
        "{:<10} | {:>8} | {:>10} | {:>12} | {:>14}",
        "device", "slices", "flat fits", "RW unplaced", "RW final cost"
    );
    let mut first_fit: Option<String> = None;
    for dev in Device::zynq_family() {
        let flat = run_amd_flow(&design, &dev, &AmdFlowConfig::default());
        let rw = run_rw_flow(
            &design,
            &dev,
            &RwFlowConfig {
                policy: CfPolicy::Minimal(CfSearch::wide()),
                use_shape_report: true,
                model: PlacementModel::default(),
                stitch: StitchConfig {
                    max_moves: 30_000,
                    ..StitchConfig::standard(7)
                },
                portfolio: None,
                mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
                seed: 7,
                obs: tailored_macro_sizes::obs::noop(),
            },
        );
        let unplaced = rw.stitch.unplaced_count + rw.failed.len();
        println!(
            "{:<10} | {:>8} | {:>10} | {:>12} | {:>14.0}",
            format!("{}", dev.name()),
            dev.slice_count(),
            flat.placement.fully_placed,
            unplaced,
            rw.stitch.final_cost
        );
        if unplaced == 0 && first_fit.is_none() {
            first_fit = Some(format!("{}", dev.name()));
        }
    }
    match first_fit {
        Some(part) => println!("\nsmallest part that fully places the block design: {part}"),
        None => println!("\nno part in the family fully places the block design"),
    }
}
