//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release --example paper_experiments -- all quick
//! cargo run --release --example paper_experiments -- table2 paper
//! cargo run --release --example paper_experiments -- fig5 fig13 paper json
//! ```
//!
//! Targets: `table1 fig3 fig4 fig5 fig7 fig8 table2 fig9 fig10 fig11 fig12
//! fig13 resolution ablations all`; scale: `quick` (default) or `paper`;
//! add `json` to emit machine-readable results instead of the text tables.

use serde::Serialize;
use std::fmt::Display;
use tailored_macro_sizes::flow::experiments::{
    ablations, common::Scale, fig10, fig11, fig12, fig13, fig3, fig4, fig5, fig7, fig8, fig9,
    resolution, table1, table2,
};

/// Render a result either as its display table or as pretty JSON.
fn emit<T: Display + Serialize>(value: T, as_json: bool) -> String {
    if as_json {
        serde_json::to_string_pretty(&value).expect("experiment results serialize")
    } else {
        format!("{value}")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "paper") {
        Scale::paper()
    } else {
        Scale::quick()
    };
    let as_json = args.iter().any(|a| a == "json");
    let mut targets: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !matches!(*a, "paper" | "quick" | "json"))
        .collect();
    if targets.is_empty() || targets.contains(&"all") {
        targets = vec![
            "table1",
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "table2",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "resolution",
            "ablations",
        ];
    }

    if !as_json {
        println!(
            "# scale: {} ({} dataset modules, {} SA moves)\n",
            if scale.full_models { "paper" } else { "quick" },
            scale.dataset_modules,
            scale.sa_moves
        );
    }
    for t in targets {
        let start = std::time::Instant::now();
        let output = match t {
            "table1" => emit(table1::run(scale.seed), as_json),
            "fig3" => emit(fig3::run(scale.seed), as_json),
            "fig4" => emit(fig4::run(scale.seed), as_json),
            "fig5" => emit(fig5::run(&scale), as_json),
            "fig7" => emit(fig7::run(&scale), as_json),
            "fig8" => emit(fig8::run(&scale), as_json),
            "table2" => emit(table2::run(&scale), as_json),
            "fig9" => emit(fig9::run(&scale), as_json),
            "fig10" => emit(fig10::run(&scale), as_json),
            "fig11" => emit(fig11::run(&scale), as_json),
            "fig12" => emit(fig12::run(&scale), as_json),
            "fig13" => emit(fig13::run(&scale), as_json),
            "resolution" => emit(resolution::run(scale.seed), as_json),
            "ablations" => emit(ablations::run(&scale), as_json),
            other => {
                eprintln!("unknown target '{other}'");
                continue;
            }
        };
        println!("{output}");
        if !as_json {
            println!("[{t} took {:.1}s]\n", start.elapsed().as_secs_f64());
        }
    }
}
