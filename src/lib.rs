//! Workspace-root facade for the tailored-macro-sizes reproduction.
//!
//! This package exists to host the runnable [examples](../examples) and the
//! cross-crate [integration tests](../tests); the library surface is the
//! re-export of [`tms_core`], the umbrella crate of the workspace.

pub use tms_core::*;
