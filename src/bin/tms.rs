//! `tms` — command-line front end of the tailored-macro-sizes flow.
//!
//! ```text
//! tms devices                          list the modelled Zynq-7000 family
//! tms compile [opts]                   train + compile the cnvW1A1
//! tms train [opts]                     train an estimator, print its error
//! tms experiments <targets> [opts]     regenerate paper tables/figures
//! tms serve [opts]                     start the estimation/pre-impl service
//! tms client <endpoint> [opts]         query a running service
//! tms store <inspect|compact|verify>   manage a persistent macro library
//! tms report --trace <path>            render a JSONL trace as a phase table
//! tms stitch [opts]                    stitch the cnvW1A1 macros: single-run
//!                                      SA, or the parallel search portfolio
//! tms pack [opts]                      memory-aware weight packing: assign
//!                                      each module's weight banks to
//!                                      BRAM36 / BRAM18-half / LUTRAM bins,
//!                                      print the per-module table
//! tms chaos [opts]                     fault-injection drill: serve under a
//!                                      seeded fault plan, show recovery
//! tms loadgen [opts]                   drive a running server with the
//!                                      deterministic request mix, print
//!                                      per-endpoint latency quantiles
//! tms slowlog [opts]                   fetch a server's tail-sampled
//!                                      slowlog (slow/errored request
//!                                      traces) and summarise it
//! tms verify <module|--all> [opts]     independent integrity audit: re-derive
//!                                      the legality of implemented modules
//!                                      from first principles (tms-verify) and
//!                                      check sealed content digests; pass
//!                                      --dir to audit a persistent macro
//!                                      library read-only instead of
//!                                      implementing fresh
//! tms scrub [opts]                     one scrub pass over a persistent
//!                                      macro library: audit every sealed
//!                                      record, quarantine violators into
//!                                      quarantine/, print the report
//!
//! options:
//!   --device <xc7z010|xc7z020|xc7z030|xc7z045|xc7z100|ultrascale-like>
//!                                                        (default xc7z045)
//!   --estimator <rf|dt|nn|lin>                           (default rf)
//!   --features <classical|classical+|additional|all>     (default additional)
//!   --dataset <N>        training sweep size              (default 600)
//!   --seed <N>                                            (default 2024)
//!   --paper              experiments at full paper scale
//!   --render             print the placed-fabric map after compile
//!   --save <path>        train: write the trained model as JSON
//!   --trace <path>       compile: write a JSONL telemetry trace of the
//!                        whole run (render it with `tms report`)
//!
//! serve options:
//!   --port <N>           listen port (default 7245; 0 = ephemeral)
//!   --workers <N>        worker threads / concurrent connections (default 8)
//!   --cache <N>          implementation-cache capacity (default 4096)
//!   --model <path>       load a model saved by `tms train --save`
//!                        (skips training; pass the matching --features)
//!   --store <dir>        back the cache with a persistent macro library:
//!                        warm-start from <dir>, WAL-append every insert,
//!                        checkpoint on graceful shutdown (`tms client
//!                        shutdown`)
//!   --scrub-secs <N>     background-scrub the library every N seconds
//!                        (requires --store; quarantined records are
//!                        recomputed on the next request)
//!   --scrub-bps <N>      scrub byte/s budget (default 8 MiB/s; 0 =
//!                        unthrottled)
//!
//! store options (all subcommands take --dir <path>):
//!   inspect              print the library statistics as JSON
//!   compact              fold the WAL into a fresh snapshot generation
//!   verify               read-only integrity audit (checksums, torn
//!                        tails, stale generations); exits 1 if corrupt
//!
//! client options (endpoint: estimate | preimpl | flow | stats | metrics
//!                 | shutdown):
//!   --addr <host:port>   server address (default 127.0.0.1:7245)
//!   --port <N>           shorthand for --addr 127.0.0.1:<N>
//!   --role <mvau|swu|act|pool|weights>   module recipe (default mvau)
//!   --target <N>         module size in slices (default 60)
//!   --name <s>           module name (default the role label)
//!   --cf <x>             constant CF; omit for minimal-CF search
//!   --timeout <secs>     reply deadline (default 120); the connect
//!                        timeout is 5 s — a dead server never hangs you
//!
//! stitch options:
//!   --portfolio          use the multi-lane search portfolio instead of
//!                        the single-run annealer
//!   --lanes <N>          total portfolio lanes: N−1 SA + 1 EA (default 3)
//!   --threads <N>        worker threads; 0 = one per core (default 0).
//!                        Affects wall-clock only — results are identical
//!                        for every thread count
//!   --deadline-ms <N>    wall-clock budget, checked at round barriers
//!                        (default: none; the round budget bounds the run)
//!   --seed <N>           portfolio seed; lane seeds derive from it
//!
//! pack options:
//!   --design <name>      cnvw1a1 (default) or a zoo member
//!                        (bnn-wide | bnn-deep | bnn-fc | bnn-slim)
//!   --mode <naive|packed>  all-BRAM36 baseline or portfolio search
//!                        (default packed)
//!   --device <name>      as above, plus ultrascale-like
//!   --seed <N>           design + search seed (default 2024)
//!   --rounds <N>         portfolio exchange rounds (default 12)
//!   --moves <N>          per-lane moves per round (default 2048)
//!   --threads <N>        worker threads; 0 = one per core (default 0).
//!                        Wall-clock only — results are bit-identical
//!   --modules            also print the per-module assignment table
//!
//! chaos options (an in-process server is bombarded under a seeded
//! fault plan, then the faults are lifted to demonstrate recovery):
//!   --seed <N>           fault-plan seed — same seed, same faults
//!   --requests <N>       requests to fire under faults (default 40)
//!   --place-rate <x>     flow.place fault probability   (default 0.25)
//!   --append-rate <x>    store.append fault probability (default 0)
//!   --fsync-rate <x>     store.fsync fault probability  (default 0.1)
//!   --read-rate <x>      serve.read fault probability   (default 0.05)
//!   --attempts <N>       server retry budget            (default 6)
//!   --store <dir>        run the drill against a persistent library
//!
//! loadgen options (plus --addr/--port as for `tms client`):
//!   --clients <N>        concurrent client connections  (default 4)
//!   --requests <N>       requests per client            (default 25)
//!   --seed <N>           request-mix seed               (default 2024)
//!   --rate <hz>          open-loop aggregate arrival rate; omit for
//!                        closed-loop (back-to-back) pacing
//!   --out <path>         also write the full JSON report
//!
//! slowlog options (plus --addr/--port as for `tms client`):
//!   --limit <N>          newest entries to fetch (default 16; 0 = all)
//!   --json               print the raw JSON report instead of the table
//!
//! verify options:
//!   --all                audit every unique cnvW1A1 module (or, with
//!                        --dir, every stored record)
//!   --dir <path>         audit a persistent macro library in place
//!                        (read-only; `tms scrub` is the destructive
//!                        variant that quarantines)
//!   --cf <x>             constant CF for fresh implementation; omit for
//!                        minimal-CF search
//!   --device/--seed      as above
//!
//! scrub options:
//!   --dir <path>         the persistent macro library (required)
//!   --bps <N>            byte/s budget for the pass (0 = unthrottled,
//!                        the default here; servers default to 8 MiB/s)
//! ```

use std::collections::HashMap;
use tailored_macro_sizes::cnn::{cnvw1a1, ModuleRole};
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::estimator::{CfEstimator, EstimatorKind, FeatureSet};
use tailored_macro_sizes::flow::experiments::common::Scale;
use tailored_macro_sizes::flow::{coverage_line, render_cost_trace, render_stitched};
use tailored_macro_sizes::obs::{read_trace, JsonlSink, Recorder};
use tailored_macro_sizes::route::{route_stitched_observed, RouterConfig};
use tailored_macro_sizes::serve::{
    serve, Client, ClientConfig, ClientError, ModuleSpec, ServeConfig,
};
use tailored_macro_sizes::MacroSizingFlow;

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn device_of(flags: &HashMap<String, String>) -> Device {
    match flags.get("device").map(String::as_str) {
        Some("xc7z010") => Device::xc7z010(),
        Some("xc7z020") => Device::xc7z020(),
        Some("xc7z030") => Device::xc7z030(),
        Some("xc7z100") => Device::xc7z100(),
        Some("ultrascale-like") => Device::ultrascale_like(),
        Some("xc7z045") | None => Device::xc7z045(),
        Some(other) => {
            eprintln!("unknown device '{other}', using xc7z045");
            Device::xc7z045()
        }
    }
}

fn estimator_of(flags: &HashMap<String, String>) -> EstimatorKind {
    match flags.get("estimator").map(String::as_str) {
        Some("dt") => EstimatorKind::DecisionTree,
        Some("nn") => EstimatorKind::NeuralNetwork,
        Some("lin") => EstimatorKind::LinearRegression,
        _ => EstimatorKind::RandomForest,
    }
}

fn features_of(flags: &HashMap<String, String>) -> FeatureSet {
    match flags.get("features").map(String::as_str) {
        Some("classical") => FeatureSet::Classical,
        Some("classical+") => FeatureSet::ClassicalPlus,
        Some("all") => FeatureSet::All,
        _ => FeatureSet::Additional,
    }
}

fn num(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_devices() {
    println!(
        "{:<10} | {:>8} | {:>9} | {:>6} | {:>6} | {:>8}",
        "device", "slices", "M-slices", "BRAM", "DSP", "columns"
    );
    for d in Device::zynq_family() {
        println!(
            "{:<10} | {:>8} | {:>9} | {:>6} | {:>6} | {:>8}",
            format!("{}", d.name()),
            d.slice_count(),
            d.m_slice_count(),
            d.bram_count(),
            d.dsp_count(),
            d.width()
        );
    }
}

fn cmd_train(flags: &HashMap<String, String>) {
    let device = device_of(flags);
    let flow = MacroSizingFlow::new(device)
        .with_estimator(estimator_of(flags))
        .with_feature_set(features_of(flags))
        .with_dataset_size(num(flags, "dataset", 600) as usize)
        .with_seed(num(flags, "seed", 2024));
    println!("labelling + training ...");
    let start = std::time::Instant::now();
    let trained = flow.train();
    println!(
        "trained a {:?}-feature estimator in {:.1}s",
        trained.feature_set(),
        start.elapsed().as_secs_f64()
    );
    // Quick self-check on the cnvW1A1 modules.
    let design = cnvw1a1(num(flags, "seed", 2024));
    for name in ["mvau_18", "weights_14", "swu_l3", "pool_1"] {
        if let Some(m) = design.find_module(name) {
            println!(
                "  predicted CF for {name}: {:.2}",
                trained.predict(&m.netlist)
            );
        }
    }
    if let Some(path) = flags.get("save") {
        match trained.estimator().save(std::path::Path::new(path)) {
            Ok(()) => println!(
                "model written to {path} (features: {})",
                trained.feature_set().label()
            ),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn cmd_compile(flags: &HashMap<String, String>) {
    let device = device_of(flags);
    let seed = num(flags, "seed", 2024);
    let mut flow = MacroSizingFlow::new(device.clone())
        .with_estimator(estimator_of(flags))
        .with_feature_set(features_of(flags))
        .with_dataset_size(num(flags, "dataset", 600) as usize)
        .with_seed(seed);
    let trace: Option<(std::sync::Arc<JsonlSink>, &String)> = match flags.get("trace") {
        Some(path) => match JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => {
                let sink = std::sync::Arc::new(sink);
                flow = flow.with_recorder(sink.clone());
                Some((sink, path))
            }
            Err(e) => {
                eprintln!("could not create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };
    println!("training estimator ...");
    let trained = flow.train();
    let design = cnvw1a1(seed);
    println!(
        "compiling cnvW1A1 ({} blocks) on {} ...",
        design.instance_count(),
        device.name()
    );
    let result = flow.compile(&design, &trained);
    println!(
        "implemented {}/{} modules in {} tool runs ({:.0}% first-try)",
        result.implemented.len(),
        design.unique_count(),
        result.total_tool_runs,
        result.first_try_rate() * 100.0
    );
    println!(
        "{}",
        coverage_line(&device, &result.problem, &result.stitch)
    );
    println!(
        "SA cost {:.0} -> {:.0}   {}",
        result.stitch.initial_cost,
        result.stitch.final_cost,
        render_cost_trace(&result.stitch.cost_trace, 48)
    );
    let route_obs: &dyn Recorder = match &trace {
        Some((sink, _)) => sink.as_ref(),
        None => tailored_macro_sizes::obs::noop(),
    };
    let route = route_stitched_observed(
        &device,
        &result.problem,
        &result.stitch,
        &RouterConfig::default(),
        route_obs,
    );
    println!(
        "routing: {} connections, wirelength {}, fully routed: {}",
        route.routed_connections, route.total_wirelength, route.fully_routed
    );
    if flags.contains_key("render") {
        println!(
            "{}",
            render_stitched(&device, &result.problem, &result.stitch, 110, 45)
        );
    }
    if let Some((sink, path)) = trace {
        if let Err(e) = sink.flush() {
            eprintln!("could not flush trace {path}: {e}");
            std::process::exit(1);
        }
        println!("telemetry trace written to {path} (render: tms report --trace {path})");
    }
}

fn cmd_report(flags: &HashMap<String, String>) {
    let Some(path) = flags.get("trace") else {
        eprintln!("usage: tms report --trace <path>");
        std::process::exit(2);
    };
    match read_trace(std::path::Path::new(path)) {
        Ok(events) => print!("{}", tailored_macro_sizes::obs::report::render(&events)),
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_experiments(targets: &[String], flags: &HashMap<String, String>) {
    // Delegate to the experiment drivers at the requested scale.
    use tailored_macro_sizes::flow::experiments as ex;
    let scale = if flags.contains_key("paper") {
        Scale::paper()
    } else {
        Scale::quick()
    };
    let all = [
        "table1",
        "fig3",
        "fig4",
        "fig5",
        "fig7",
        "fig8",
        "table2",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "resolution",
        "ablations",
    ];
    let run_list: Vec<&str> = if targets.is_empty() || targets.iter().any(|t| t == "all") {
        all.to_vec()
    } else {
        targets.iter().map(String::as_str).collect()
    };
    for t in run_list {
        let out = match t {
            "table1" => format!("{}", ex::table1::run(scale.seed)),
            "fig3" => format!("{}", ex::fig3::run(scale.seed)),
            "fig4" => format!("{}", ex::fig4::run(scale.seed)),
            "fig5" => format!("{}", ex::fig5::run(&scale)),
            "fig7" => format!("{}", ex::fig7::run(&scale)),
            "fig8" => format!("{}", ex::fig8::run(&scale)),
            "table2" => format!("{}", ex::table2::run(&scale)),
            "fig9" => format!("{}", ex::fig9::run(&scale)),
            "fig10" => format!("{}", ex::fig10::run(&scale)),
            "fig11" => format!("{}", ex::fig11::run(&scale)),
            "fig12" => format!("{}", ex::fig12::run(&scale)),
            "fig13" => format!("{}", ex::fig13::run(&scale)),
            "resolution" => format!("{}", ex::resolution::run(scale.seed)),
            "ablations" => format!("{}", ex::ablations::run(&scale)),
            other => format!("unknown experiment '{other}'"),
        };
        println!("{out}");
    }
}

fn cmd_serve(flags: &HashMap<String, String>) {
    let features = features_of(flags);
    let estimator = if let Some(path) = flags.get("model") {
        match CfEstimator::load(std::path::Path::new(path)) {
            Ok(est) => {
                println!("loaded {} model from {path}", est.kind().label());
                est
            }
            Err(e) => {
                eprintln!("could not load {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let flow = MacroSizingFlow::new(device_of(flags))
            .with_estimator(estimator_of(flags))
            .with_feature_set(features)
            .with_dataset_size(num(flags, "dataset", 600) as usize)
            .with_seed(num(flags, "seed", 2024));
        println!("no --model given: labelling + training ...");
        let (est, _) = flow.train().into_parts();
        est
    };
    let store_dir = flags.get("store").cloned();
    let mut config = ServeConfig {
        addr: format!("127.0.0.1:{}", num(flags, "port", 7245)),
        workers: num(flags, "workers", 8) as usize,
        cache_capacity: num(flags, "cache", 4096) as usize,
        store: store_dir
            .as_ref()
            .map(|dir| tailored_macro_sizes::store::StoreConfig::at(dir.as_str())),
        ..ServeConfig::default()
    };
    if let Some(secs) = flags.get("scrub-secs").and_then(|v| v.parse::<u64>().ok()) {
        config = config.with_scrub(
            std::time::Duration::from_secs(secs.max(1)),
            num(flags, "scrub-bps", 8 * 1024 * 1024),
        );
    }
    let workers = config.workers;
    match serve(config, estimator, features) {
        Ok(handle) => {
            println!(
                "tms-serve listening on {} ({workers} workers, features: {})",
                handle.addr(),
                features.label()
            );
            if let Some(dir) = &store_dir {
                println!("persistent macro library: {dir} (checkpointed on graceful shutdown)");
            }
            println!(
                "endpoints: estimate | preimpl | flow | stats | metrics | slowlog | shutdown  \
                 (JSON lines; see `tms client`) — plain HTTP `GET /metrics` works too"
            );
            handle.serve_forever();
            println!("tms-serve stopped");
        }
        Err(e) => {
            eprintln!("could not start server: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_store(args: &[String], flags: &HashMap<String, String>) {
    use tailored_macro_sizes::flow::MacroStore;
    use tailored_macro_sizes::store::{verify, Store, StoreConfig};
    let Some(dir) = flags.get("dir") else {
        eprintln!("usage: tms store <inspect|compact|verify> --dir <path>");
        std::process::exit(2);
    };
    let path = std::path::Path::new(dir);
    match args.first().map(String::as_str) {
        Some("inspect") => {
            // Opening replays the WAL (and truncates any torn tail), so
            // the numbers reflect what a server would actually load.
            let opened: std::io::Result<MacroStore> = Store::open(StoreConfig::at(path));
            match opened {
                Ok(store) => println!("{}", to_pretty(&store.stats())),
                Err(e) => {
                    eprintln!("could not open store at {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("compact") => {
            let opened: std::io::Result<MacroStore> = Store::open(StoreConfig::at(path));
            match opened.and_then(|store| store.compact()) {
                Ok(report) => println!("{}", to_pretty(&report)),
                Err(e) => {
                    eprintln!("could not compact store at {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("verify") => match verify(path) {
            Ok(report) => {
                println!("{report}");
                if !report.clean() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("could not verify store at {dir}: {e}");
                std::process::exit(1);
            }
        },
        _ => {
            eprintln!("usage: tms store <inspect|compact|verify> --dir <path>");
            std::process::exit(2);
        }
    }
}

/// Independent end-to-end integrity audit. With `--dir` the persistent
/// macro library is audited in place and read-only: every sealed record's
/// content digest is recomputed and its placement legality re-derived
/// from first principles by the dependency-light `tms-verify` auditor —
/// nothing is quarantined (that is `tms scrub`). Without `--dir` the
/// named cnvW1A1 module (or all of them under `--all`) is implemented
/// fresh and the flow's own output is audited, proving the toolchain
/// produces artifacts that pass its own verifier.
fn cmd_verify(args: &[String], flags: &HashMap<String, String>) {
    use tailored_macro_sizes::flow::{
        audit_module, implement_module, module_digest, verify_sealed, CfPolicy, MacroStore,
        RwFlowConfig,
    };
    use tailored_macro_sizes::store::{Store, StoreConfig};
    use tailored_macro_sizes::verify::Auditor;

    let all = flags.contains_key("all");
    let wanted = args.first().cloned();
    if !all && wanted.is_none() && !flags.contains_key("dir") {
        eprintln!("usage: tms verify <module|--all> [--dir <store>] [options]");
        std::process::exit(2);
    }

    let (mut checked, mut violations) = (0u64, 0u64);
    if let Some(dir) = flags.get("dir") {
        let opened: std::io::Result<MacroStore> =
            Store::open(StoreConfig::at(std::path::Path::new(dir)));
        let store = match opened {
            Ok(s) => s,
            Err(e) => {
                eprintln!("could not open store at {dir}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "auditing {} stored records in {dir} (read-only) ...",
            store.len()
        );
        let mut devices = HashMap::new();
        for (key, sealed) in store.export() {
            if let Some(name) = &wanted {
                if &sealed.module.name != name {
                    continue;
                }
            }
            checked += 1;
            let device = devices
                .entry(key.device())
                .or_insert_with(|| Device::from_name(key.device()));
            let auditor = Auditor::new(device);
            match verify_sealed(&auditor, &sealed) {
                Ok(()) => println!(
                    "  ok       {:<20} digest {:#018x}",
                    sealed.module.name, sealed.digest
                ),
                Err(reason) => {
                    violations += 1;
                    println!("  CORRUPT  {:<20} {reason}", sealed.module.name);
                }
            }
        }
    } else {
        let device = device_of(flags);
        let seed = num(flags, "seed", 2024);
        let design = cnvw1a1(seed);
        let mut cfg = RwFlowConfig::rapidwright_default(seed);
        // Minimal-CF search is the policy the cached flows implement
        // under, so it is what fresh verification should reproduce; a
        // constant CF is opt-in and may legitimately fail to route.
        cfg.policy = match flags.get("cf").and_then(|v| v.parse::<f64>().ok()) {
            Some(cf) => CfPolicy::Constant(cf),
            None => CfPolicy::Minimal(tailored_macro_sizes::pblock::CfSearch::wide()),
        };
        println!(
            "implementing + auditing cnvW1A1 modules on {} (seed {seed}) ...",
            device.name()
        );
        let auditor = Auditor::new(&device);
        for m in &design.modules {
            if let Some(name) = &wanted {
                if &m.name != name {
                    continue;
                }
            }
            checked += 1;
            match implement_module(&m.name, &m.netlist, &device, &cfg) {
                Ok(module) => {
                    let found = audit_module(&auditor, &module);
                    if found.is_empty() {
                        println!(
                            "  ok       {:<20} cf {:>5.2}  digest {:#018x}",
                            module.name,
                            module.cf,
                            module_digest(&module)
                        );
                    } else {
                        violations += 1;
                        println!(
                            "  ILLEGAL  {:<20} {} violations; first: {}",
                            module.name,
                            found.len(),
                            found[0]
                        );
                    }
                }
                Err(e) => {
                    violations += 1;
                    println!("  FAILED   {:<20} {e}", m.name);
                }
            }
        }
        if checked == 0 {
            eprintln!(
                "no module named '{}' in cnvW1A1",
                wanted.unwrap_or_default()
            );
            std::process::exit(2);
        }
    }
    println!("verified {checked} artifacts: {violations} violations");
    if violations > 0 {
        std::process::exit(1);
    }
}

/// One scrub pass over a persistent macro library: walk every stored
/// record under the byte/s budget, audit each (sealed digest + legality),
/// and quarantine violators into `quarantine/` — they are recomputed on
/// the next request that needs them. Exits 1 if anything was quarantined
/// so scripted health checks can alarm.
fn cmd_scrub(flags: &HashMap<String, String>) {
    use tailored_macro_sizes::flow::{MacroStore, StoreAuditor};
    use tailored_macro_sizes::store::{Store, StoreConfig};

    let Some(dir) = flags.get("dir") else {
        eprintln!("usage: tms scrub --dir <path> [--bps <N>]");
        std::process::exit(2);
    };
    let opened: std::io::Result<MacroStore> =
        Store::open(StoreConfig::at(std::path::Path::new(dir)));
    let store = match opened {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not open store at {dir}: {e}");
            std::process::exit(1);
        }
    };
    let bps = num(flags, "bps", 0);
    println!(
        "scrubbing {} records in {dir} ({}) ...",
        store.len(),
        if bps == 0 {
            "unthrottled".to_string()
        } else {
            format!("{bps} byte/s budget")
        }
    );
    let mut auditor = StoreAuditor::new();
    match store.scrub_with(bps, |key, sealed| auditor.audit(key, sealed)) {
        Ok(report) => {
            println!("{}", to_pretty(&report));
            if report.quarantined > 0 {
                println!(
                    "{} record(s) quarantined into {} — they will be recomputed on demand",
                    report.quarantined,
                    store.quarantine_path().display()
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("scrub failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_client(args: &[String], flags: &HashMap<String, String>) {
    let default_addr = format!("127.0.0.1:{}", num(flags, "port", 7245));
    let addr = flags.get("addr").unwrap_or(&default_addr);
    let client_config = ClientConfig {
        read_timeout: Some(std::time::Duration::from_secs(num(flags, "timeout", 120))),
        ..ClientConfig::default()
    };
    let mut client = match Client::connect_with(addr.as_str(), client_config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("could not connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let role = match ModuleRole::from_label(flags.get("role").map_or("mvau", String::as_str)) {
        Some(r) => r,
        None => {
            eprintln!("unknown role (expected mvau|swu|act|pool|weights)");
            std::process::exit(2);
        }
    };
    let spec = ModuleSpec {
        role,
        target_slices: num(flags, "target", 60) as u32,
        name: flags
            .get("name")
            .cloned()
            .unwrap_or_else(|| role.label().to_string()),
        seed: num(flags, "seed", 2024),
    };
    let device = device_of(flags).name().to_string();
    let cf = flags.get("cf").and_then(|v| v.parse::<f64>().ok());
    let printed = match args.first().map(String::as_str) {
        Some("estimate") => client.estimate_spec(&spec).map(|r| to_pretty(&r)),
        Some("preimpl") => client.preimpl(&spec, &device, cf).map(|r| to_pretty(&r)),
        Some("flow") => client
            .flow(num(flags, "seed", 2024), &device, cf)
            .map(|r| to_pretty(&r)),
        Some("stats") => client.stats().map(|r| to_pretty(&r)),
        Some("metrics") => client.metrics_text(),
        Some("slowlog") => client
            .slowlog(num(flags, "limit", 0))
            .map(|r| to_pretty(&r)),
        Some("shutdown") => client.shutdown().map(|r| to_pretty(&r)),
        _ => {
            eprintln!(
                "usage: tms client <estimate|preimpl|flow|stats|metrics|slowlog|shutdown> \
                 [options]"
            );
            std::process::exit(2);
        }
    };
    match printed {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("request failed: {e}");
            std::process::exit(1);
        }
    }
}

/// A fault-injection drill against an in-process server: arm a seeded
/// [`FaultPlan`](tailored_macro_sizes::fault::FaultPlan), fire a burst of
/// requests (tolerating injected failures), print the plan's accounting
/// and the server's robustness counters, then lift every fault and show
/// the service recovering. The same seed reproduces the same faults.
fn cmd_chaos(flags: &HashMap<String, String>) {
    use std::sync::Arc;
    use tailored_macro_sizes::fault::{FaultPlan, FaultPoint, Retry};

    let rate = |key: &str, default: f64| -> f64 {
        flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
            .clamp(0.0, 1.0)
    };
    let seed = num(flags, "seed", 2024);
    let requests = num(flags, "requests", 40);
    let features = features_of(flags);
    let device = device_of(flags);
    let device_name = device.name().to_string();

    println!("training a quick estimator for the chaos run ...");
    let flow = MacroSizingFlow::new(device.clone())
        .with_estimator(estimator_of(flags))
        .with_feature_set(features)
        .with_dataset_size(num(flags, "dataset", 150) as usize)
        .with_seed(seed);
    let (estimator, _) = flow.train().into_parts();

    let plan = Arc::new(FaultPlan::seeded(seed));
    plan.set_rate(FaultPoint::FlowPlace, rate("place-rate", 0.25));
    plan.set_rate(FaultPoint::StoreAppend, rate("append-rate", 0.0));
    plan.set_rate(FaultPoint::StoreFsync, rate("fsync-rate", 0.1));
    plan.set_rate(FaultPoint::ServeRead, rate("read-rate", 0.05));

    let mut config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: num(flags, "workers", 4) as usize,
        retry: Retry::attempts(num(flags, "attempts", 6) as u32),
        ..ServeConfig::default()
    };
    if let Some(dir) = flags.get("store") {
        config = config.with_store_dir(dir.as_str());
    }
    let config = config.with_fault(Arc::clone(&plan));
    let handle = match serve(config, estimator, features) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not start the chaos target: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!("chaos target listening on {addr} (fault seed {seed})");

    let roles = [
        ModuleRole::Mvau,
        ModuleRole::Activation,
        ModuleRole::SlidingWindow,
        ModuleRole::MaxPool,
    ];
    let spec_for = |i: u64| {
        let role = roles[(i as usize) % roles.len()];
        ModuleSpec {
            role,
            target_slices: 24 + ((i % 5) as u32) * 8,
            name: format!("chaos_{}_{}", role.label(), i % 7),
            seed,
        }
    };

    let (mut ok, mut server_errors, mut dropped) = (0u64, 0u64, 0u64);
    let mut client = Client::connect(addr).ok();
    for i in 0..requests {
        if client.is_none() {
            client = Client::connect(addr).ok();
        }
        let Some(c) = client.as_mut() else {
            dropped += 1;
            continue;
        };
        match c.preimpl(&spec_for(i), &device_name, None) {
            Ok(_) => ok += 1,
            Err(ClientError::Remote(_)) => server_errors += 1,
            Err(_) => {
                // The connection died (e.g. an injected serve.read
                // fault): reconnect on the next round.
                dropped += 1;
                client = None;
            }
        }
    }
    println!(
        "under faults: {ok} ok, {server_errors} structured errors, {dropped} dropped \
         connections (of {requests} requests — the server never crashed)"
    );
    println!("fault-plan accounting (point / consults / injected):");
    for (point, hits, injected) in plan.report() {
        if hits > 0 {
            println!("  {:<13} {hits:>8} {injected:>8}", point.label());
        }
    }

    // Lift every fault: the same server must serve cleanly again.
    plan.clear();
    let mut recovered = 0u64;
    for i in 0..8 {
        let healthy = Client::connect(addr)
            .ok()
            .and_then(|mut c| c.preimpl(&spec_for(i), &device_name, None).ok());
        if healthy.is_some() {
            recovered += 1;
        }
    }
    println!("after clearing faults: {recovered}/8 requests succeeded");
    match Client::connect(addr) {
        Ok(mut c) => {
            match c.stats() {
                Ok(stats) => {
                    println!("robustness report:\n{}", to_pretty(&stats.robustness));
                    println!("per-endpoint latency quantiles (interpolated, microseconds):");
                    println!(
                        "  {:<9} {:>8} {:>6} {:>10} {:>10} {:>10}",
                        "endpoint", "requests", "errors", "p50", "p99", "p999"
                    );
                    let endpoints = [
                        ("estimate", &stats.estimate),
                        ("preimpl", &stats.preimpl),
                        ("flow", &stats.flow),
                        ("stats", &stats.stats),
                    ];
                    for (name, snap) in endpoints {
                        if snap.requests == 0 {
                            continue;
                        }
                        println!(
                            "  {:<9} {:>8} {:>6} {:>10} {:>10} {:>10}",
                            name,
                            snap.requests,
                            snap.errors,
                            snap.p50_us,
                            snap.p99_us,
                            snap.p999_us
                        );
                    }
                }
                Err(e) => eprintln!("stats failed: {e}"),
            }
            // The tail sampler must have caught the drill's casualties:
            // every errored/degraded request keeps its full span tree.
            match c.slowlog(0) {
                Ok(log) => {
                    let mut by_outcome: std::collections::BTreeMap<&str, u64> =
                        std::collections::BTreeMap::new();
                    for entry in &log.entries {
                        *by_outcome.entry(entry.outcome.label()).or_default() += 1;
                    }
                    println!(
                        "slowlog captures: {} retained of {} considered ({} evicted by the \
                         ring bound):",
                        log.retained, log.considered, log.evicted
                    );
                    for (outcome, count) in &by_outcome {
                        println!("  {count:>4} x {outcome}");
                    }
                    for entry in log.entries.iter().take(5) {
                        println!(
                            "  trace {:>4}  {:<9} {:>8}us  {:<9} {} spans",
                            entry.trace_id,
                            entry.endpoint,
                            entry.latency_us,
                            entry.outcome.label(),
                            entry.span_count()
                        );
                    }
                }
                Err(e) => eprintln!("slowlog failed: {e}"),
            }
        }
        Err(e) => eprintln!("reconnect failed: {e}"),
    }
    handle.stop();
    println!("chaos run complete");
}

/// Drive a *running* server with the deterministic loadgen mix and print
/// the per-endpoint latency quantiles (see `bench_serve` for the
/// self-contained benchmark variant that boots its own server and gates
/// CI). Closed-loop by default; `--rate <hz>` switches to open-loop
/// pacing where latency includes queueing delay.
fn cmd_loadgen(flags: &HashMap<String, String>) {
    use tailored_macro_sizes::serve::loadgen::{run_loadgen, LoadMode, LoadgenConfig};
    let default_addr = format!("127.0.0.1:{}", num(flags, "port", 7245));
    let addr_str = flags.get("addr").unwrap_or(&default_addr);
    let addr: std::net::SocketAddr = match addr_str.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad --addr '{addr_str}': {e}");
            std::process::exit(2);
        }
    };
    let mut config = LoadgenConfig::closed(
        addr,
        num(flags, "clients", 4) as usize,
        num(flags, "requests", 25) as usize,
        num(flags, "seed", 2024),
    );
    if let Some(rate) = flags.get("rate").and_then(|v| v.parse::<f64>().ok()) {
        config.mode = LoadMode::Open { rate_hz: rate };
    }
    println!(
        "loadgen: {} mode, {} clients x {} requests against {addr} (seed {})",
        config.mode.label(),
        config.clients,
        config.requests_per_client,
        config.seed
    );
    let report = match run_loadgen(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{} requests, {} errors in {:.0}ms | server: {} shed, {} deadline-expired, slowlog \
         retained {}/{}",
        report.requests_total,
        report.errors_total,
        report.wall_ms,
        report.server.shed,
        report.server.deadline_expired,
        report.server.slowlog_retained,
        report.server.slowlog_considered,
    );
    println!(
        "  {:<9} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "endpoint", "requests", "errors", "p50us", "p99us", "p999us", "meanus"
    );
    for e in &report.endpoints {
        println!(
            "  {:<9} {:>8} {:>6} {:>10} {:>10} {:>10} {:>10}",
            e.endpoint, e.requests, e.errors, e.p50_us, e.p99_us, e.p999_us, e.mean_us
        );
    }
    if let Some(path) = flags.get("out") {
        match std::fs::write(path, format!("{}\n", to_pretty(&report))) {
            Ok(()) => println!("report written to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Fetch and summarise a running server's tail-sampled slowlog: retention
/// counters, a per-outcome breakdown, and one line per retained trace
/// (newest first) with its over-budget phases.
fn cmd_slowlog(flags: &HashMap<String, String>) {
    let default_addr = format!("127.0.0.1:{}", num(flags, "port", 7245));
    let addr = flags.get("addr").unwrap_or(&default_addr);
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("could not connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let log = match client.slowlog(num(flags, "limit", 16)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("slowlog request failed: {e}");
            std::process::exit(1);
        }
    };
    if flags.contains_key("json") {
        println!("{}", to_pretty(&log));
        return;
    }
    println!(
        "slowlog: {} retained of {} considered, {} evicted (ring capacity {}, slow \
         threshold {}us)",
        log.retained, log.considered, log.evicted, log.capacity, log.threshold_us
    );
    if log.entries.is_empty() {
        println!("no retained traces — nothing has been slow or unhealthy");
        return;
    }
    println!(
        "  {:<6} {:<9} {:>10} {:<9} {:>6}  over-budget phases",
        "trace", "endpoint", "latency_us", "outcome", "spans"
    );
    for entry in &log.entries {
        let phases = if entry.over_budget_phases.is_empty() {
            "-".to_string()
        } else {
            entry
                .over_budget_phases
                .iter()
                .map(|p| p.label())
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "  {:<6} {:<9} {:>10} {:<9} {:>6}  {phases}",
            entry.trace_id,
            entry.endpoint,
            entry.latency_us,
            entry.outcome.label(),
            entry.span_count()
        );
    }
}

/// Stitch the cnvW1A1 macro set (pre-implemented at a constant CF so the
/// problem is a pure function of the seed): either with the seed-era
/// single-run annealer, or — under `--portfolio` — with the multi-lane
/// search portfolio tuned by the committed `BENCH_stitch.json` config.
fn cmd_pack(flags: &HashMap<String, String>) {
    use tailored_macro_sizes::cnn::{zoo_design, zoo_names};
    use tailored_macro_sizes::obs::noop;
    use tailored_macro_sizes::pack::{pack_design, MemPackConfig, MemPackPolicy};

    let device = device_of(flags);
    let seed = num(flags, "seed", 2024);
    let design_name = flags.get("design").map_or("cnvw1a1", String::as_str);
    let design = if design_name == "cnvw1a1" {
        cnvw1a1(seed)
    } else {
        match zoo_design(design_name, seed) {
            Some(d) => d,
            None => {
                eprintln!(
                    "unknown design '{design_name}' (expected cnvw1a1 or one of: {})",
                    zoo_names().join(", ")
                );
                std::process::exit(2);
            }
        }
    };
    let policy = match flags.get("mode").map(String::as_str) {
        Some("naive") => MemPackPolicy::Naive,
        Some("packed") | None => MemPackPolicy::Packed,
        Some(other) => {
            eprintln!("unknown mode '{other}' (expected naive|packed)");
            std::process::exit(2);
        }
    };
    let cfg = MemPackConfig {
        rounds: num(flags, "rounds", 12) as u32,
        moves_per_round: num(flags, "moves", 2_048),
        threads: num(flags, "threads", 0) as usize,
        ..MemPackConfig::new(policy, seed)
    };
    println!(
        "packing {design_name} (seed {seed}) for {}: {} policy ...",
        device.name(),
        policy.label()
    );
    let Some((_, report)) = pack_design(&design, &device, &cfg, noop()) else {
        println!("nothing to pack: the design carries no weight memories");
        return;
    };
    println!(
        "BRAM36 demand {} -> {} of {} budgeted ({} saved), {}",
        report.naive_bram36,
        report.bram36_total,
        report.budget_bram36,
        report.bram36_saved,
        if report.feasible {
            "fits the device"
        } else {
            "OVER BUDGET"
        },
    );
    println!(
        "banks: {} on BRAM36, {} on BRAM18 halves, {} in LUTRAM ({} LUTs); model cost {:.1}",
        report.banks_bram36,
        report.banks_bram18,
        report.banks_lutram,
        report.lutram_luts,
        report.cost
    );
    if let Some(s) = &report.search {
        println!(
            "portfolio: {} rounds, {} moves, {} adoptions, winner {} (SA {} / EA {} wins) in {:.1}ms",
            s.rounds, s.moves, s.adoptions, s.winner, s.sa_wins, s.ea_wins, s.wall_ms
        );
    }
    if flags.contains_key("modules") {
        println!(
            "  {:<14} {:>4}  {:>6} {:>6} {:>6}  {:>7} {:>7}",
            "module", "inst", "b36", "b18h", "lutram", "sites36", "luts"
        );
        for m in &report.modules {
            println!(
                "  {:<14} {:>4}  {:>6} {:>6} {:>6}  {:>7} {:>7}",
                m.name,
                m.instances,
                m.split.full36,
                m.split.halves,
                m.split.lutram,
                m.sites36,
                m.lutram_luts
            );
        }
    }
}

fn cmd_stitch(flags: &HashMap<String, String>) {
    use tailored_macro_sizes::flow::{bench_problem, StitchBenchConfig};
    use tailored_macro_sizes::stitch::{stitch, stitch_portfolio, StitchConfig};

    let device = device_of(flags);
    let seed = num(flags, "seed", 2024);
    println!(
        "building the cnvW1A1 stitch problem on {} (seed {seed}) ...",
        device.name()
    );
    let problem = bench_problem(&device, seed);
    println!(
        "{} instances, {} nets",
        problem.instances.len(),
        problem.nets.len()
    );

    if flags.contains_key("portfolio") {
        // Start from the canonical tuned parameters, then apply the
        // lane/thread/deadline overrides.
        let mut cfg = StitchBenchConfig::canonical(seed).portfolio;
        let lanes = num(flags, "lanes", 3).max(1) as usize;
        cfg.sa_lanes = lanes.saturating_sub(1).max(1);
        cfg.ea_lanes = usize::from(lanes >= 2);
        cfg.threads = num(flags, "threads", 0) as usize;
        if let Some(ms) = flags.get("deadline-ms").and_then(|v| v.parse().ok()) {
            cfg = cfg.with_deadline_ms(ms);
        }
        let started = std::time::Instant::now();
        let (result, report) = stitch_portfolio(&device, &problem, &cfg);
        let wall = started.elapsed().as_secs_f64() * 1e3;
        println!(
            "portfolio: {} SA + {} EA lanes, {} rounds run ({}), {} moves in {wall:.1}ms",
            cfg.sa_lanes,
            cfg.ea_lanes,
            report.rounds_run,
            if report.stalled_out {
                "stall stop"
            } else if report.deadline_hit {
                "deadline"
            } else {
                "full budget"
            },
            result.total_moves,
        );
        for lane in &report.lanes {
            println!(
                "  lane {:<3} seed {:>20}  best {:>10.0}  wins {:>2}  restarts {}",
                lane.kind.label(),
                lane.seed,
                lane.best_score.cost,
                lane.wins,
                lane.restarts
            );
        }
        println!(
            "cost {:.0} -> {:.0}, placed {}/{}",
            result.initial_cost,
            result.final_cost,
            result.placed_count,
            result.placed_count + result.unplaced_count
        );
    } else {
        let cfg = StitchConfig::standard(seed);
        let started = std::time::Instant::now();
        let result = stitch(&device, &problem, &cfg);
        let wall = started.elapsed().as_secs_f64() * 1e3;
        println!("single-run SA: {} moves in {wall:.1}ms", result.total_moves);
        println!(
            "cost {:.0} -> {:.0}, placed {}/{}   {}",
            result.initial_cost,
            result.final_cost,
            result.placed_count,
            result.placed_count + result.unplaced_count,
            render_cost_trace(&result.cost_trace, 48)
        );
    }
}

fn to_pretty<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("unprintable reply: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, flags) = parse_flags(&args);
    match positional.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("train") => cmd_train(&flags),
        Some("compile") => cmd_compile(&flags),
        Some("experiments") => cmd_experiments(&positional[1..], &flags),
        Some("serve") => cmd_serve(&flags),
        Some("client") => cmd_client(&positional[1..], &flags),
        Some("store") => cmd_store(&positional[1..], &flags),
        Some("report") => cmd_report(&flags),
        Some("stitch") => cmd_stitch(&flags),
        Some("pack") => cmd_pack(&flags),
        Some("chaos") => cmd_chaos(&flags),
        Some("loadgen") => cmd_loadgen(&flags),
        Some("slowlog") => cmd_slowlog(&flags),
        Some("verify") => cmd_verify(&positional[1..], &flags),
        Some("scrub") => cmd_scrub(&flags),
        _ => {
            eprintln!(
                "usage: tms <devices|train|compile|experiments|serve|client|store|report|stitch\
                 |pack|chaos|loadgen|slowlog|verify|scrub> [options]"
            );
            eprintln!("see the module docs in src/bin/tms.rs for the option list");
            std::process::exit(2);
        }
    }
}
