//! `tms` — command-line front end of the tailored-macro-sizes flow.
//!
//! ```text
//! tms devices                          list the modelled Zynq-7000 family
//! tms compile [opts]                   train + compile the cnvW1A1
//! tms train [opts]                     train an estimator, print its error
//! tms experiments <targets> [opts]     regenerate paper tables/figures
//!
//! options:
//!   --device <xc7z010|xc7z020|xc7z030|xc7z045|xc7z100>   (default xc7z045)
//!   --estimator <rf|dt|nn|lin>                           (default rf)
//!   --features <classical|classical+|additional|all>     (default additional)
//!   --dataset <N>        training sweep size              (default 600)
//!   --seed <N>                                            (default 2024)
//!   --paper              experiments at full paper scale
//!   --render             print the placed-fabric map after compile
//! ```

use std::collections::HashMap;
use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::estimator::{EstimatorKind, FeatureSet};
use tailored_macro_sizes::flow::experiments::common::Scale;
use tailored_macro_sizes::flow::{coverage_line, render_cost_trace, render_stitched};
use tailored_macro_sizes::route::{route_stitched, RouterConfig};
use tailored_macro_sizes::MacroSizingFlow;

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn device_of(flags: &HashMap<String, String>) -> Device {
    match flags.get("device").map(String::as_str) {
        Some("xc7z010") => Device::xc7z010(),
        Some("xc7z020") => Device::xc7z020(),
        Some("xc7z030") => Device::xc7z030(),
        Some("xc7z100") => Device::xc7z100(),
        Some("xc7z045") | None => Device::xc7z045(),
        Some(other) => {
            eprintln!("unknown device '{other}', using xc7z045");
            Device::xc7z045()
        }
    }
}

fn estimator_of(flags: &HashMap<String, String>) -> EstimatorKind {
    match flags.get("estimator").map(String::as_str) {
        Some("dt") => EstimatorKind::DecisionTree,
        Some("nn") => EstimatorKind::NeuralNetwork,
        Some("lin") => EstimatorKind::LinearRegression,
        _ => EstimatorKind::RandomForest,
    }
}

fn features_of(flags: &HashMap<String, String>) -> FeatureSet {
    match flags.get("features").map(String::as_str) {
        Some("classical") => FeatureSet::Classical,
        Some("classical+") => FeatureSet::ClassicalPlus,
        Some("all") => FeatureSet::All,
        _ => FeatureSet::Additional,
    }
}

fn num(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_devices() {
    println!(
        "{:<10} | {:>8} | {:>9} | {:>6} | {:>6} | {:>8}",
        "device", "slices", "M-slices", "BRAM", "DSP", "columns"
    );
    for d in Device::zynq_family() {
        println!(
            "{:<10} | {:>8} | {:>9} | {:>6} | {:>6} | {:>8}",
            format!("{}", d.name()),
            d.slice_count(),
            d.m_slice_count(),
            d.bram_count(),
            d.dsp_count(),
            d.width()
        );
    }
}

fn cmd_train(flags: &HashMap<String, String>) {
    let device = device_of(flags);
    let flow = MacroSizingFlow::new(device)
        .with_estimator(estimator_of(flags))
        .with_feature_set(features_of(flags))
        .with_dataset_size(num(flags, "dataset", 600) as usize)
        .with_seed(num(flags, "seed", 2024));
    println!("labelling + training ...");
    let start = std::time::Instant::now();
    let trained = flow.train();
    println!(
        "trained a {:?}-feature estimator in {:.1}s",
        trained.feature_set(),
        start.elapsed().as_secs_f64()
    );
    // Quick self-check on the cnvW1A1 modules.
    let design = cnvw1a1(num(flags, "seed", 2024));
    for name in ["mvau_18", "weights_14", "swu_l3", "pool_1"] {
        if let Some(m) = design.find_module(name) {
            println!("  predicted CF for {name}: {:.2}", trained.predict(&m.netlist));
        }
    }
}

fn cmd_compile(flags: &HashMap<String, String>) {
    let device = device_of(flags);
    let seed = num(flags, "seed", 2024);
    let flow = MacroSizingFlow::new(device.clone())
        .with_estimator(estimator_of(flags))
        .with_feature_set(features_of(flags))
        .with_dataset_size(num(flags, "dataset", 600) as usize)
        .with_seed(seed);
    println!("training estimator ...");
    let trained = flow.train();
    let design = cnvw1a1(seed);
    println!("compiling cnvW1A1 ({} blocks) on {} ...", design.instance_count(), device.name());
    let result = flow.compile(&design, &trained);
    println!(
        "implemented {}/{} modules in {} tool runs ({:.0}% first-try)",
        result.implemented.len(),
        design.unique_count(),
        result.total_tool_runs,
        result.first_try_rate() * 100.0
    );
    println!("{}", coverage_line(&device, &result.problem, &result.stitch));
    println!(
        "SA cost {:.0} -> {:.0}   {}",
        result.stitch.initial_cost,
        result.stitch.final_cost,
        render_cost_trace(&result.stitch.cost_trace, 48)
    );
    let route = route_stitched(&device, &result.problem, &result.stitch, &RouterConfig::default());
    println!(
        "routing: {} connections, wirelength {}, fully routed: {}",
        route.routed_connections, route.total_wirelength, route.fully_routed
    );
    if flags.contains_key("render") {
        println!("{}", render_stitched(&device, &result.problem, &result.stitch, 110, 45));
    }
}

fn cmd_experiments(targets: &[String], flags: &HashMap<String, String>) {
    // Delegate to the experiment drivers at the requested scale.
    use tailored_macro_sizes::flow::experiments as ex;
    let scale = if flags.contains_key("paper") { Scale::paper() } else { Scale::quick() };
    let all = [
        "table1", "fig3", "fig4", "fig5", "fig7", "fig8", "table2", "fig9", "fig10", "fig11",
        "fig12", "fig13", "resolution", "ablations",
    ];
    let run_list: Vec<&str> = if targets.is_empty() || targets.iter().any(|t| t == "all") {
        all.to_vec()
    } else {
        targets.iter().map(String::as_str).collect()
    };
    for t in run_list {
        let out = match t {
            "table1" => format!("{}", ex::table1::run(scale.seed)),
            "fig3" => format!("{}", ex::fig3::run(scale.seed)),
            "fig4" => format!("{}", ex::fig4::run(scale.seed)),
            "fig5" => format!("{}", ex::fig5::run(&scale)),
            "fig7" => format!("{}", ex::fig7::run(&scale)),
            "fig8" => format!("{}", ex::fig8::run(&scale)),
            "table2" => format!("{}", ex::table2::run(&scale)),
            "fig9" => format!("{}", ex::fig9::run(&scale)),
            "fig10" => format!("{}", ex::fig10::run(&scale)),
            "fig11" => format!("{}", ex::fig11::run(&scale)),
            "fig12" => format!("{}", ex::fig12::run(&scale)),
            "fig13" => format!("{}", ex::fig13::run(&scale)),
            "resolution" => format!("{}", ex::resolution::run(scale.seed)),
            "ablations" => format!("{}", ex::ablations::run(&scale)),
            other => format!("unknown experiment '{other}'"),
        };
        println!("{out}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positional, flags) = parse_flags(&args);
    match positional.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("train") => cmd_train(&flags),
        Some("compile") => cmd_compile(&flags),
        Some("experiments") => cmd_experiments(&positional[1..], &flags),
        _ => {
            eprintln!("usage: tms <devices|train|compile|experiments> [options]");
            eprintln!("see the module docs in src/bin/tms.rs for the option list");
            std::process::exit(2);
        }
    }
}
