//! Cross-crate integration: the full pipeline from RTL generation through
//! labelling, training, PBlock sizing, placement and stitching.

use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::estimator::{
    build_dataset, to_ml_dataset, CfEstimator, EstimatorKind, FeatureSet, LabelConfig,
};
use tailored_macro_sizes::flow::{
    run_amd_flow, run_rw_flow, AmdFlowConfig, CfPolicy, RwFlowConfig,
};
use tailored_macro_sizes::pblock::CfSearch;
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::rtlgen::{standard_sweep, SweepConfig};
use tailored_macro_sizes::stitch::StitchConfig;
use tailored_macro_sizes::{MacroSizingFlow, TrainedEstimator};

fn quick_flow_cfg(policy: CfPolicy<'_>, seed: u64) -> RwFlowConfig<'_> {
    RwFlowConfig {
        policy,
        use_shape_report: true,
        model: PlacementModel::default(),
        stitch: StitchConfig::fast(seed),
        portfolio: None,
        mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
        obs: tailored_macro_sizes::obs::noop(),
        seed,
    }
}

#[test]
fn sweep_to_estimator_to_flow() {
    // Generate and label a small sweep.
    let dev = Device::xc7z020();
    let modules = standard_sweep(
        &SweepConfig {
            target_modules: 150,
            max_luts: 2_000,
            min_luts: 2,
        },
        3,
    );
    let labelled = build_dataset(&modules, &dev, &LabelConfig::default());
    assert!(labelled.len() >= 120);

    // Train an estimator on the relative features.
    let ds = to_ml_dataset(&labelled, FeatureSet::Additional);
    let (train, test) = ds.split(0.8, 1);
    let est = CfEstimator::train_small(EstimatorKind::RandomForest, &train, 1);
    assert!(est.mean_relative_error(&test) < 0.15);

    // Drive the guided flow on the CNN with it.
    let design = cnvw1a1(3);
    let preds: std::collections::HashMap<String, f64> = design
        .modules
        .iter()
        .map(|m| {
            let stats = m.netlist.stats();
            let packing = tailored_macro_sizes::synth::pack(&stats);
            let shape = tailored_macro_sizes::place::quick_place(&stats, &packing);
            let f =
                tailored_macro_sizes::estimator::ModuleFeatures::extract(&stats, &packing, &shape);
            (
                m.name.clone(),
                est.predict(&f.select(FeatureSet::Additional)).max(0.5),
            )
        })
        .collect();
    let predict = |name: &str| preds.get(name).copied().unwrap_or(1.0);
    let result = run_rw_flow(
        &design,
        &Device::xc7z045(),
        &quick_flow_cfg(
            CfPolicy::Guided {
                predict: &predict,
                max_cf: 3.0,
            },
            3,
        ),
    );
    assert!(result.failed.is_empty(), "{:?}", result.failed);
    assert_eq!(result.stitch.unplaced_count, 0);
}

#[test]
fn facade_equals_manual_pipeline() {
    let flow = MacroSizingFlow::new(Device::xc7z045())
        .with_dataset_size(150)
        .with_sa_moves(4_000)
        .with_seed(11);
    let trained: TrainedEstimator = flow.train();
    let design = cnvw1a1(11);
    let result = flow.compile(&design, &trained);
    assert_eq!(result.implemented.len() + result.failed.len(), 74);
    assert!(result.stitch.placed_count + result.stitch.unplaced_count <= 175);
    // The estimator must buy a decent share of first-try implementations.
    assert!(
        result.first_try_rate() > 0.2,
        "rate = {}",
        result.first_try_rate()
    );
}

#[test]
fn rw_flow_vs_flat_baseline_on_the_small_part() {
    // Section III's observation: the flat tool fills the xc7z020, the
    // block-based flow cannot place everything there.
    let design = cnvw1a1(5);
    let small = Device::xc7z020();
    let flat = run_amd_flow(&design, &small, &AmdFlowConfig::default());
    assert!(flat.placement.fully_placed);

    let rw = run_rw_flow(
        &design,
        &small,
        &quick_flow_cfg(CfPolicy::Minimal(CfSearch::wide()), 5),
    );
    let unplaced = rw.stitch.unplaced_count + rw.failed.len();
    assert!(
        unplaced > 0,
        "RW should not fully place the almost-full part"
    );

    // On the 4x larger part the same flow places everything.
    let big = Device::xc7z045();
    let rw_big = run_rw_flow(
        &design,
        &big,
        &quick_flow_cfg(CfPolicy::Minimal(CfSearch::wide()), 5),
    );
    assert!(rw_big.failed.is_empty());
    assert_eq!(rw_big.stitch.unplaced_count, 0);
}

#[test]
fn stitched_blocks_never_overlap_and_fit_the_device() {
    let design = cnvw1a1(9);
    let dev = Device::xc7z045();
    let r = run_rw_flow(
        dev_design_cfg(&design, &dev),
        &dev,
        &quick_flow_cfg(CfPolicy::Constant(1.5), 9),
    );
    let mut rects: Vec<tailored_macro_sizes::device::Rect> = Vec::new();
    for (i, pos) in r.stitch.positions.iter().enumerate() {
        if let Some((x, y)) = pos {
            let b = r.problem.block_of(i as u32);
            let rect = tailored_macro_sizes::device::Rect::new(*x, *y, b.width, b.height);
            assert!(dev.bounds().contains(&rect), "block {i} off device");
            for other in &rects {
                assert!(!rect.overlaps(other), "overlap at block {i}");
            }
            rects.push(rect);
        }
    }
    assert!(!rects.is_empty());
}

// Identity helper so the test above reads naturally.
fn dev_design_cfg<'a>(
    design: &'a tailored_macro_sizes::cnn::CnvDesign,
    _dev: &Device,
) -> &'a tailored_macro_sizes::cnn::CnvDesign {
    design
}
