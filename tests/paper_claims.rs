//! The paper's headline claims, checked end-to-end at reduced scale.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator,
//! not Vivado on silicon); these tests pin the *shape* of every result:
//! who wins, in which direction, and by a sane factor.

use tailored_macro_sizes::estimator::{EstimatorKind, FeatureSet};
use tailored_macro_sizes::flow::experiments::{
    ablations, common::Scale, fig11, fig12, fig13, fig4, fig5, fig9, table1, table2,
};

#[test]
fn claim_pblock_size_controls_slices_and_timing() {
    // Table I: tighter PBlocks use fewer slices but have longer paths.
    let t = table1::run(2024);
    for module in table1::MODULES {
        let tight = t.row(module, 1.0).unwrap();
        let loose = t.row(module, 1.5).unwrap();
        assert!(tight.slices < loose.slices);
        assert!(tight.longest_path_ns > loose.longest_path_ns);
        // The ratio regime of the paper (1371/1529 ≈ 0.90, 28/31 ≈ 0.90).
        let ratio = f64::from(tight.slices) / f64::from(loose.slices);
        assert!((0.70..1.0).contains(&ratio), "{module}: ratio {ratio:.2}");
    }
}

#[test]
fn claim_optimal_cf_beats_worst_case_constant() {
    // Figure 5: per-module minimal CFs leave fewer blocks unplaced than the
    // worst-case constant CF (paper: 52 vs 68 of 175, ≈15% more placed).
    let f = fig5::run(&Scale::quick());
    assert!(f.unplaced_constant > f.unplaced_minimal);
    assert!(f.placed_gain > 0.02, "gain = {:.3}", f.placed_gain);
    // The constant CF itself must be in the paper's regime (1.68).
    assert!(
        (1.3..2.1).contains(&f.constant_cf),
        "cf = {}",
        f.constant_cf
    );
    // And the flat vendor flow fits what RW cannot.
    assert!(f.amd_fully_placed);
    assert!(f.amd_utilization > 0.9);
}

#[test]
fn claim_cf_range_matches_fig4() {
    // Figure 4: CF distribution up to ≈1.68 with sub-0.9 outliers.
    let f = fig4::run(2024);
    assert!((1.2..2.2).contains(&f.max_cf));
    let below_09 = f
        .histogram
        .iter()
        .filter(|&&(cf, _)| cf < 0.9)
        .map(|&(_, c)| c)
        .sum::<usize>();
    assert!(
        below_09 > 0,
        "small/BRAM-driven modules should label below 0.9"
    );
}

#[test]
fn claim_learned_estimators_reach_single_digit_error() {
    // Table II: all tree/NN estimators land in the single-digit regime and
    // the relative features are at least as good as the classical ones.
    let t = table2::run(&Scale::quick());
    for c in &t.cells {
        assert!(
            c.error < 0.12,
            "{} {}: {:.3}",
            c.kind.label(),
            c.set.label(),
            c.error
        );
    }
    let rf_add = t
        .error(EstimatorKind::RandomForest, FeatureSet::Additional)
        .unwrap();
    let rf_cls = t
        .error(EstimatorKind::RandomForest, FeatureSet::Classical)
        .unwrap();
    assert!(
        rf_add <= rf_cls * 1.05,
        "additional {rf_add:.3} vs classical {rf_cls:.3}"
    );
    // Linear regression trails the learners (paper: 9.4% vs ≤6.2%).
    let best = t.cells.iter().map(|c| c.error).fold(f64::MAX, f64::min);
    assert!(t.linreg_error > best);
}

#[test]
fn claim_carry_ratio_is_the_dominant_feature() {
    // Figures 9 and 12: Carry/All carries 40-50% of the decision.
    let f9 = fig9::run(&Scale::quick());
    let add = f9.set(FeatureSet::Additional).unwrap();
    assert!(add.importance_of("Carry/All").unwrap() > 0.25);
    let f12 = fig12::run(&Scale::quick());
    assert!(f12.importance_of("Carry/All").unwrap() > 0.2);
    assert!(f12.relative_share() > 0.5);
}

#[test]
fn claim_estimator_speeds_up_the_flow() {
    // Section VIII: fewer tool runs than a constant-0.9 start, comparable
    // or faster SA convergence, and no cost regression versus CF 1.68.
    let f = fig13::run(&Scale::quick());
    assert!(f.run_ratio > 1.1, "run ratio {:.2}", f.run_ratio);
    assert!(f.first_try_rate > 0.25, "first-try {:.2}", f.first_try_rate);
    assert!(
        f.cost_estimator <= f.cost_constant * 1.02,
        "cost {:.0} vs {:.0}",
        f.cost_estimator,
        f.cost_constant
    );
}

#[test]
fn claim_compact_macros_help_the_routing_stage() {
    // Extension of the paper's Section V-D argument to design scale: the
    // estimator flow's compact macros route with no more inter-block wire
    // and both flows stay within channel capacity on the xc7z045.
    let f = fig13::run(&Scale::quick());
    assert!(f.fully_routed.0, "estimator flow must route overflow-free");
    assert!(
        (f.route_wirelength.0 as f64) <= f.route_wirelength.1 as f64 * 1.05,
        "wirelength {} vs {}",
        f.route_wirelength.0,
        f.route_wirelength.1
    );
}

#[test]
fn claim_design_choices_survive_ablation() {
    let a = ablations::run(&Scale::quick());
    // The paper's hyper-parameters sit on their plateaus.
    let d20 = a.tree_depth.iter().find(|(d, _)| *d == 20).unwrap().1;
    let d30 = a.tree_depth.iter().find(|(d, _)| *d == 30).unwrap().1;
    assert!((d20 - d30).abs() < 0.02, "depth 20 is on the plateau");
    // More expressiveness (boosting) does not dominate the forest.
    assert!(a.gbt_error > a.rf_error * 0.5 && a.gbt_error < a.rf_error * 2.0);
    // The SA stitcher earns its keep over greedy legalisation.
    assert!(a.stitch_sa_cost < a.stitch_greedy_cost * 0.9);
}

#[test]
fn claim_cross_domain_transfer_works() {
    // Figure 11: estimators trained on the synthetic sweep transfer to the
    // CNN modules with low-double-digit median error at worst.
    let f = fig11::run(&Scale::quick());
    assert!(f.modules >= 40);
    assert!(
        f.nn.median_error < 0.25,
        "nn median {:.3}",
        f.nn.median_error
    );
    assert!(
        f.linreg.median_error < 0.30,
        "linreg median {:.3}",
        f.linreg.median_error
    );
}
