//! Reproducibility: every stochastic stage is keyed by explicit seeds, so
//! identical inputs must give bit-identical results across runs — and
//! different seeds must actually change the stochastic choices.

use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::estimator::{build_dataset, LabelConfig};
use tailored_macro_sizes::flow::{run_rw_flow, CfPolicy, RwFlowConfig};
use tailored_macro_sizes::pblock::CfSearch;
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::rtlgen::{standard_sweep, SweepConfig};
use tailored_macro_sizes::stitch::StitchConfig;

fn run_flow(seed: u64) -> (Vec<Option<(u32, u32)>>, f64, u32) {
    let design = cnvw1a1(1);
    let dev = Device::xc7z045();
    let r = run_rw_flow(
        &design,
        &dev,
        &RwFlowConfig {
            policy: CfPolicy::Minimal(CfSearch::wide()),
            use_shape_report: true,
            model: PlacementModel::default(),
            stitch: StitchConfig::fast(seed),
            portfolio: None,
            mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
            obs: tailored_macro_sizes::obs::noop(),
            seed,
        },
    );
    (r.stitch.positions, r.stitch.final_cost, r.total_tool_runs)
}

#[test]
fn whole_flow_is_bit_reproducible() {
    let a = run_flow(7);
    let b = run_flow(7);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn different_seeds_change_the_anneal() {
    let a = run_flow(7);
    let b = run_flow(8);
    assert_ne!(a.0, b.0, "different SA seeds should explore differently");
}

#[test]
fn labelling_is_reproducible_across_runs() {
    let dev = Device::xc7z020();
    let modules = standard_sweep(
        &SweepConfig {
            target_modules: 60,
            max_luts: 1_000,
            min_luts: 2,
        },
        5,
    );
    let a = build_dataset(&modules, &dev, &LabelConfig::default());
    let b = build_dataset(&modules, &dev, &LabelConfig::default());
    let cfs = |v: &[tailored_macro_sizes::estimator::LabelledModule]| -> Vec<f64> {
        v.iter().map(|m| m.min_cf).collect()
    };
    assert_eq!(cfs(&a), cfs(&b));
}

#[test]
fn design_generation_is_seed_stable() {
    let a = cnvw1a1(123);
    let b = cnvw1a1(123);
    for (ma, mb) in a.modules.iter().zip(&b.modules) {
        assert_eq!(ma.name, mb.name);
        assert_eq!(ma.netlist.stats(), mb.netlist.stats());
    }
    assert_eq!(a.nets.len(), b.nets.len());
}
