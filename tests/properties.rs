//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! modules, not just the curated designs.

use proptest::prelude::*;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::pblock::{min_feasible_cf, CfSearch, PBlockGenerator};
use tailored_macro_sizes::place::{place_in_region, quick_place, PlacementModel};
use tailored_macro_sizes::rtlgen::{Generator, MixedParams};
use tailored_macro_sizes::synth::{optimistic_slice_estimate, pack};

fn arb_params() -> impl Strategy<Value = MixedParams> {
    (
        1u32..1_500, // luts
        0u32..3_000, // ffs
        1u32..32,    // control sets
        0u32..8,     // chains
        2u32..64,    // chain bits
        0u32..256,   // lutrams
        0u32..32,    // srls
        0u32..3,     // brams
        0u32..4,     // dsps
        1u32..10,    // depth
    )
        .prop_map(
            |(luts, ffs, control_sets, nchain, bits, lutrams, srls, brams, dsps, depth)| {
                MixedParams {
                    luts,
                    ffs,
                    control_sets,
                    carry_chains: (nchain, bits),
                    lutrams,
                    srls,
                    brams,
                    dsps,
                    depth,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The minimal-CF search result is actually feasible, and one step
    /// below it is not (minimality), for arbitrary modules.
    #[test]
    fn min_cf_is_feasible_and_minimal(params in arb_params(), seed in 0u64..1_000) {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let model = PlacementModel::deterministic();
        let nl = params.generate(seed);
        let stats = nl.stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        let search = CfSearch::default();
        if let Some(found) =
            min_feasible_cf(&gen, &stats, &packing, &shape, &model, &search, seed)
        {
            // Feasible at the found CF.
            let pb = gen.generate(&shape, found.cf).expect("pblock at found cf");
            prop_assert!(place_in_region(&stats, &packing, &dev, &pb.rect, &model, seed).is_ok());
            // Infeasible one step below (when above the search floor).
            if found.cf > search.start + 1e-9 {
                if let Some(pb_below) = gen.generate(&shape, found.cf - search.step) {
                    prop_assert!(
                        place_in_region(&stats, &packing, &dev, &pb_below.rect, &model, seed)
                            .is_err(),
                        "cf {} - step should fail", found.cf
                    );
                }
            }
        }
    }

    /// Every generated PBlock covers its module's hard demand and its
    /// relocation signature matches its geometry.
    #[test]
    fn pblocks_cover_demand(params in arb_params(), cf in 0.9f64..2.0) {
        let dev = Device::xc7z020();
        let gen = PBlockGenerator::new(&dev, true);
        let nl = params.generate(1);
        let stats = nl.stats();
        let packing = pack(&stats);
        let shape = quick_place(&stats, &packing);
        if let Some(pb) = gen.generate(&shape, cf) {
            prop_assert!(pb.capacity.m_slices >= shape.demand.m_slices);
            prop_assert!(pb.capacity.bram36 >= shape.demand.bram36);
            prop_assert!(pb.capacity.dsp48 >= shape.demand.dsp48);
            prop_assert!(pb.capacity.slices() >= pb.target_slices);
            prop_assert_eq!(pb.signature.width(), pb.rect.w);
            prop_assert!(dev.bounds().contains(&pb.rect));
        }
    }

    /// Packing demand covers the optimistic estimate and successful
    /// placements report consistent utilisation.
    #[test]
    fn packing_and_placement_are_consistent(params in arb_params()) {
        let nl = params.generate(2);
        let stats = nl.stats();
        let packing = pack(&stats);
        prop_assert!(packing.required_slices >= optimistic_slice_estimate(&stats));
        let dev = Device::xc7z045();
        let side = ((packing.required_slices as f64).sqrt() * 1.8).ceil() as u32 + 4;
        let region = tailored_macro_sizes::device::Rect::new(
            0, 0, side.min(dev.width()), (side + 20).min(dev.rows()),
        );
        if let Ok(p) = place_in_region(
            &stats, &packing, &dev, &region, &PlacementModel::deterministic(), 3,
        ) {
            prop_assert!(p.utilization <= 1.0 + 1e-9);
            prop_assert!(p.used_slices >= packing.required_slices.min(p.capacity.slices()));
            prop_assert!(p.congestion <= 1.0);
            prop_assert!((0.0..=1.0).contains(&p.irregularity));
        }
    }
}
