//! Cross-crate integration: routing the stitched cnvW1A1 and the
//! cache-driven incremental flow.

use tailored_macro_sizes::cnn::cnvw1a1;
use tailored_macro_sizes::device::Device;
use tailored_macro_sizes::flow::{
    run_rw_flow, run_rw_flow_cached, CfPolicy, ImplementationCache, RwFlowConfig,
};
use tailored_macro_sizes::pblock::CfSearch;
use tailored_macro_sizes::place::PlacementModel;
use tailored_macro_sizes::route::{route_stitched, RouterConfig};
use tailored_macro_sizes::stitch::StitchConfig;

fn flow_cfg(seed: u64, policy: CfPolicy<'_>) -> RwFlowConfig<'_> {
    RwFlowConfig {
        policy,
        use_shape_report: true,
        model: PlacementModel::default(),
        stitch: StitchConfig {
            max_moves: 20_000,
            ..StitchConfig::standard(seed)
        },
        portfolio: None,
        mem_pack: tailored_macro_sizes::pack::MemPackConfig::off(),
        seed,
        obs: tailored_macro_sizes::obs::noop(),
    }
}

#[test]
fn stitched_cnv_routes_on_the_large_part() {
    let design = cnvw1a1(7);
    let dev = Device::xc7z045();
    let flow = run_rw_flow(
        &design,
        &dev,
        &flow_cfg(7, CfPolicy::Minimal(CfSearch::wide())),
    );
    assert_eq!(flow.stitch.unplaced_count, 0);

    let report = route_stitched(&dev, &flow.problem, &flow.stitch, &RouterConfig::default());
    assert!(
        report.fully_routed,
        "{} overflowed cells",
        report.overflowed_cells
    );
    assert!(report.routed_connections > 150);
    assert!(report.total_wirelength > 0);
    assert!(report.peak_utilization <= 1.0 + 1e-9);
}

#[test]
fn tighter_macros_never_route_meaningfully_worse() {
    // The routing-stage corollary of the paper's compactness argument. On
    // the roomy xc7z045 the anneal equalises inter-block distances, so the
    // honest invariant is "compact macros never route meaningfully worse"
    // (on the crowded xc7z020 the loose flow cannot even place everything).
    let design = cnvw1a1(7);
    let dev = Device::xc7z045();
    let tight = run_rw_flow(
        &design,
        &dev,
        &flow_cfg(7, CfPolicy::Minimal(CfSearch::wide())),
    );
    let loose = run_rw_flow(&design, &dev, &flow_cfg(7, CfPolicy::Constant(1.72)));
    let cfg = RouterConfig::default();
    let r_tight = route_stitched(&dev, &tight.problem, &tight.stitch, &cfg);
    let r_loose = route_stitched(&dev, &loose.problem, &loose.stitch, &cfg);
    assert!(
        (r_tight.total_wirelength as f64) < r_loose.total_wirelength as f64 * 1.05,
        "tight {} vs loose {}",
        r_tight.total_wirelength,
        r_loose.total_wirelength
    );
    assert!(r_tight.peak_utilization <= r_loose.peak_utilization * 1.05 + 1e-9);
}

#[test]
fn cached_recompile_reuses_and_restitches() {
    let design = cnvw1a1(3);
    let dev = Device::xc7z045();
    let mut cache = ImplementationCache::new();
    let first = run_rw_flow_cached(
        &design,
        &dev,
        &flow_cfg(3, CfPolicy::Minimal(CfSearch::wide())),
        &mut cache,
    );
    let second = run_rw_flow_cached(
        &design,
        &dev,
        &flow_cfg(3, CfPolicy::Minimal(CfSearch::wide())),
        &mut cache,
    );
    assert_eq!(second.fresh, 0);
    assert_eq!(second.reused, first.fresh);
    assert_eq!(second.tool_runs_spent, 0);
    // The re-stitched design still routes.
    let report = route_stitched(
        &dev,
        &second.result.problem,
        &second.result.stitch,
        &RouterConfig::default(),
    );
    assert!(report.fully_routed);
}
